#include "pmemkit/introspect.hpp"

#include <algorithm>
#include <sstream>

namespace cxlpmem::pmemkit {

PoolReport inspect(const ObjectPool& pool) {
  PoolReport r;
  const PoolHeader& h = pool.header();
  r.layout = pool.layout();
  r.pool_id = h.pool_id;
  r.pool_size = h.pool_size;
  r.clean_shutdown = (h.flags & kFlagCleanShutdown) != 0;
  r.has_root = h.root_off != 0;
  r.root_size = h.root_size;

  // Lanes.  The live undo tail is transient since layout version 2, so
  // the published bytes are recomputed the way recovery would see them:
  // the checksum-valid current-generation entry prefix.  Both that scan
  // and the header reads are only performed where they cannot race with a
  // concurrent transaction: lanes sitting in the free pool (no one can
  // check one out while lane_mu_ is held, and a past owner's writes
  // happened-before its mutex-protected release) and the calling thread's
  // own transaction lane.  A lane another thread is actively transacting
  // on is in motion end to end — it is counted, never read.
  auto& mutable_pool = const_cast<ObjectPool&>(pool);
  {
    const std::lock_guard<std::mutex> lane_lock(mutable_pool.lane_mu_);
    std::vector<bool> lane_free(h.lane_count, false);
    for (const std::uint32_t l : mutable_pool.free_lanes_)
      lane_free[l] = true;
    const std::uint32_t own_lane = mutable_pool.current_tx_lane();
    for (std::uint32_t l = 0; l < h.lane_count; ++l) {
      if (!lane_free[l] && l != own_lane) {
        ++r.lanes_in_flight;
        continue;
      }
      const LaneHeader& lane = mutable_pool.lane_header(l);
      const auto state = static_cast<LaneState>(lane.state);
      if (state == LaneState::Idle && lane.redo.valid == 0) continue;
      const std::uint64_t undo_bytes =
          state == LaneState::Idle
              ? 0
              : undo_published_bytes(mutable_pool.lane_undo(l),
                                     lane.undo_gen);
      r.busy_lanes.push_back(LaneSummary{l, state, undo_bytes,
                                         lane.redo.valid != 0});
    }
  }

  r.heap = pool.stats().heap;

  // Census + structural checks through the public iteration API.
  std::map<std::uint32_t, TypeCensusRow> census;
  std::uint64_t iterated = 0;
  try {
    for (ObjId o = pool.first(); !o.is_null(); o = pool.next(o)) {
      ++iterated;
      const std::uint32_t type = pool.type_of(o);
      const std::uint64_t usable = pool.usable_size(o);
      if (usable == 0)
        r.problems.push_back("object at offset " + std::to_string(o.off) +
                             " has zero usable size");
      auto& row = census[type];
      row.type_num = type;
      row.objects += 1;
      row.usable_bytes += usable;
    }
  } catch (const std::exception& e) {
    r.problems.push_back(std::string("object walk failed: ") + e.what());
  }
  for (auto& [type, row] : census) r.census.push_back(row);

  if (iterated != r.heap.object_count)
    r.problems.push_back(
        "census/bitmap mismatch: walked " + std::to_string(iterated) +
        " objects, heap accounts " + std::to_string(r.heap.object_count));
  if (r.has_root && !pool.heap_->is_live(pool.header().root_off))
    r.problems.push_back("root oid does not point at a live object");
  if (r.heap.allocated_bytes >
      r.heap.total_bytes)
    r.problems.push_back("heap accounting exceeds capacity");

  r.consistent = r.problems.empty();
  return r;
}

std::string to_text(const PoolReport& r) {
  std::ostringstream os;
  os << "pool layout   : " << r.layout << "\n"
     << "pool id       : 0x" << std::hex << r.pool_id << std::dec << "\n"
     << "size          : " << r.pool_size << " bytes\n"
     // The flag is cleared while any handle is open, so "dirty" is the
     // normal state for a live inspection; "clean" appears only when
     // inspecting a closed image out-of-band.
     << "shutdown flag : "
     << (r.clean_shutdown ? "clean" : "dirty (normal while open)") << "\n"
     << "root object   : "
     << (r.has_root ? std::to_string(r.root_size) + " bytes" : "(none)")
     << "\n";
  os << "heap          : " << r.heap.object_count << " objects, "
     << r.heap.allocated_bytes << " / " << r.heap.total_bytes
     << " bytes allocated, " << r.heap.free_chunks << "/"
     << r.heap.chunk_count << " chunks free\n";
  if (r.busy_lanes.empty() && r.lanes_in_flight == 0) {
    os << "lanes         : all idle\n";
  } else {
    os << "lanes         : " << r.busy_lanes.size() << " in flight";
    if (r.lanes_in_flight > 0)
      os << " + " << r.lanes_in_flight << " busy on other threads";
    os << "\n";
    for (const LaneSummary& l : r.busy_lanes)
      os << "  lane " << l.index << ": state "
         << static_cast<int>(l.state) << ", undo " << l.undo_bytes
         << " B" << (l.redo_published ? ", redo published" : "") << "\n";
  }
  os << "object census :\n";
  for (const TypeCensusRow& row : r.census)
    os << "  type " << row.type_num << ": " << row.objects << " objects, "
       << row.usable_bytes << " usable bytes\n";
  os << "consistency   : " << (r.consistent ? "OK" : "PROBLEMS") << "\n";
  for (const std::string& p : r.problems) os << "  !! " << p << "\n";
  return os.str();
}

}  // namespace cxlpmem::pmemkit
