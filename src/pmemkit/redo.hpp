// pmemkit/redo.hpp — atomic multi-word update via a redo log.
//
// A RedoSession stages absolute 8-byte writes, then commit() makes them
// durable all-or-nothing:
//   1. cells + count + checksum written and persisted   (log content)
//   2. valid = 1 persisted                               (publish point)
//   3. writes applied to their targets and persisted
//   4. valid = 0 persisted                               (retire)
// A crash before (2) discards the op; after (2), recovery re-applies it.
// This is how pmemobj makes non-transactional alloc/free failure-atomic.
#pragma once

#include <cstdint>

#include "pmemkit/layout.hpp"
#include "pmemkit/oid.hpp"
#include "pmemkit/pmem_ops.hpp"

namespace cxlpmem::pmemkit {

class RedoSession {
 public:
  /// Binds to a RedoLog that lives inside `region` (a lane's log).
  RedoSession(PersistentRegion& region, RedoLog& log)
      : region_(&region), log_(&log) {}
  /// A session abandoned with writes staged (a cancelled alloc, an error
  /// between stage and commit) leaves its cells as scratch the log never
  /// published — tell the sanitizer so they don't read as dirty at close.
  ~RedoSession() { abandon(); }
  RedoSession(const RedoSession&) = delete;
  RedoSession& operator=(const RedoSession&) = delete;

  /// Stages `*(u64*)(base+off) = val`.  Throws TxError when full.
  void stage(std::uint64_t off, std::uint64_t val);

  /// Stages a 16-byte ObjId store as two cells.
  void stage_oid(std::uint64_t off, ObjId id) {
    stage(off, id.pool_id);
    stage(off + 8, id.off);
  }

  [[nodiscard]] std::uint64_t staged() const noexcept { return count_; }

  /// Publishes and applies the staged writes, then retires the log.
  void commit();

  /// Drops staged writes without touching the log.
  void reset() noexcept { abandon(); }

 private:
  void abandon() noexcept;

  PersistentRegion* region_;
  RedoLog* log_;
  std::uint64_t count_ = 0;
};

/// Recovery half: re-applies `log` if it was published, then retires it.
/// Returns true when writes were applied.
bool redo_recover(PersistentRegion& region, RedoLog& log);

}  // namespace cxlpmem::pmemkit
