#include "pmemkit/pmemsan.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "pmemkit/errors.hpp"

#if __has_include(<execinfo.h>)
#include <execinfo.h>
#define CXLPMEM_HAVE_EXECINFO 1
#endif

namespace cxlpmem::pmemkit {

namespace {

constexpr std::uint64_t kLine = 64;  // matches ShadowTracker's granularity

/// Per-thread, per-sanitizer bindings.  Keyed by PmemSan pointer because a
/// thread may hold transactions on several pmemcheck'd pools at once
/// (mirrors pool.cpp's t_current_tx).
struct LastStore {
  std::uint64_t off = 0;
  std::uint64_t len = 0;
};
thread_local std::vector<std::pair<const PmemSan*, std::uint32_t>> t_tx_lane;
thread_local std::vector<std::pair<const PmemSan*, LastStore>> t_last_store;

[[nodiscard]] const std::uint32_t* tx_lane_of(const PmemSan* san) noexcept {
  for (const auto& [s, lane] : t_tx_lane)
    if (s == san) return &lane;
  return nullptr;
}

std::string capture_backtrace() {
#ifdef CXLPMEM_HAVE_EXECINFO
  void* frames[14];
  const int n = backtrace(frames, 14);
  char** syms = backtrace_symbols(frames, n);
  if (syms == nullptr) return {};
  std::string out;
  // Skip this helper and the detection frame; keep the callers that show
  // which pmemkit path (and which caller of it) issued the bad event.
  for (int i = 2; i < n; ++i) {
    out += "    ";
    out += syms[i];
    out += '\n';
  }
  std::free(syms);  // pmemlint: allow(backtrace_symbols contract)
  return out;
#else
  return "    <no backtrace: execinfo.h unavailable>\n";
#endif
}

std::shared_ptr<ViolationSink> sink_from_env() {
  const char* v = std::getenv("CXLPMEM_PMEMCHECK_SINK");
  if (v != nullptr) {
    if (std::strcmp(v, "log") == 0) return std::make_shared<LogSink>();
    if (std::strcmp(v, "count") == 0) return std::make_shared<CountSink>();
  }
  return std::make_shared<ThrowSink>();
}

}  // namespace

std::string SanViolation::format() const {
  std::string out = "pmemsan[" + pool + "] R" +
                    std::to_string(static_cast<std::uint32_t>(rule)) + " " +
                    to_string(rule) + " off=" + std::to_string(off) +
                    " len=" + std::to_string(len) + ": " + message;
  return out;
}

void ThrowSink::report(const SanViolation& v) {
  throw PoolError(ErrKind::PersistencyViolation,
                  v.format() + "\n" + v.backtrace);
}

void LogSink::report(const SanViolation& v) {
  std::fprintf(stderr, "%s\n%s", v.format().c_str(), v.backtrace.c_str());
}

void CountSink::report(const SanViolation& v) {
  const std::lock_guard<std::mutex> lock(mu_);
  ++counts_[static_cast<std::size_t>(v.rule)];
  ++total_;
  if (kept_.size() < kKeep) kept_.push_back(v);
}

std::uint64_t CountSink::total() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

std::uint64_t CountSink::count(SanRule r) const {
  const std::lock_guard<std::mutex> lock(mu_);
  return counts_[static_cast<std::size_t>(r)];
}

std::vector<SanViolation> CountSink::violations() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return kept_;
}

PmemSan::PmemSan(const std::byte* live, std::size_t size,
                 std::string pool_name)
    : live_(live),
      durable_(live, live + size),
      pool_name_(std::move(pool_name)),
      sink_(sink_from_env()) {}

PmemSan::~PmemSan() {
  // Best effort: drop this thread's bindings so a dangling pointer can
  // never be revived by a later sanitizer at the same address.
  std::erase_if(t_tx_lane, [this](const auto& e) { return e.first == this; });
  std::erase_if(t_last_store,
                [this](const auto& e) { return e.first == this; });
}

void PmemSan::set_pool_name(std::string name) {
  const std::lock_guard<std::mutex> lock(mu_);
  pool_name_ = std::move(name);
}

void PmemSan::set_sink(std::shared_ptr<ViolationSink> sink) {
  const std::lock_guard<std::mutex> lock(mu_);
  sink_ = std::move(sink);
}

bool PmemSan::line_matches_durable(std::uint64_t l) const {
  const std::uint64_t off = l * kLine;
  if (off >= durable_.size()) return true;
  const std::uint64_t n = std::min<std::uint64_t>(kLine, durable_.size() - off);
  return std::memcmp(live_ + off, durable_.data() + off, n) == 0;
}

bool PmemSan::covered(const TxCtx& ctx, std::uint64_t off,
                      std::uint64_t end) const {
  auto it = ctx.coverage.upper_bound(off);
  if (it == ctx.coverage.begin()) return false;
  --it;
  return it->first <= off && it->second >= end;
}

SanViolation PmemSan::make_violation(SanRule rule, std::uint64_t off,
                                     std::uint64_t len,
                                     std::string message) const {
  SanViolation v;
  v.rule = rule;
  v.off = off;
  v.len = len;
  v.pool = pool_name_;
  v.message = std::move(message);
  v.backtrace = capture_backtrace();
  return v;
}

void PmemSan::deliver(std::vector<SanViolation> found) {
  if (found.empty()) return;
  std::shared_ptr<ViolationSink> sink;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    sink = sink_;
  }
  for (SanViolation& v : found) {
    total_.fetch_add(1, std::memory_order_relaxed);
    rule_counts_[static_cast<std::size_t>(v.rule)].fetch_add(
        1, std::memory_order_relaxed);
    if (sink) sink->report(v);  // may throw (ThrowSink) — counters are done
  }
}

void PmemSan::on_store(std::uint64_t off, std::uint64_t len,
                       StoreOrigin origin) {
  if (len == 0) return;
  std::vector<SanViolation> found;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (origin == StoreOrigin::User && off >= meta_bound_) {
      // R1: a user-data store inside a transaction must be covered by an
      // add_range / add_fresh_range of that same transaction.
      if (const std::uint32_t* lane = tx_lane_of(this); lane != nullptr) {
        const TxCtx& ctx = tx_[*lane];
        if (ctx.active && !covered(ctx, off, off + len))
          found.push_back(make_violation(
              SanRule::UnloggedStore, off, len,
              "store inside a transaction to bytes neither undo-logged "
              "(add_range) nor fresh (add_fresh_range); an abort or crash "
              "cannot restore them"));
      }
    }
    const std::uint64_t first = off / kLine;
    const std::uint64_t last = (off + len - 1) / kLine;
    for (std::uint64_t l = first; l <= last; ++l) {
      lines_[l] = Line::Stored;
      pending_.erase(l);  // a re-dirtied flushed line needs a new flush
    }
  }
  // R6 bookkeeping: remember the store so a narrower follow-up persist is
  // detectable.
  for (auto& [s, st] : t_last_store)
    if (s == this) {
      st = LastStore{off, len};
      deliver(std::move(found));
      return;
    }
  t_last_store.emplace_back(this, LastStore{off, len});
  deliver(std::move(found));
}

void PmemSan::on_flush(std::uint64_t off, std::uint64_t len) {
  if (len == 0) return;
  std::vector<SanViolation> found;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    const std::uint64_t first = off / kLine;
    const std::uint64_t last = (off + len - 1) / kLine;
    for (std::uint64_t l = first; l <= last; ++l) {
      const auto it = lines_.find(l);
      if (it == lines_.end()) {
        // Never annotated.  Content decides: a line that differs from the
        // durable image was raw-stored through a direct() pointer — accept
        // it as an implicit store; a line that matches carries nothing for
        // this flush to publish.
        if (line_matches_durable(l))
          found.push_back(make_violation(
              SanRule::FlushNeverStored, l * kLine, kLine,
              "flush of a line no store ever touched (over-wide flush "
              "range?)"));
        lines_[l] = Line::Pending;
        pending_.insert(l);
        continue;
      }
      switch (it->second) {
        case Line::Stored:
          it->second = Line::Pending;
          pending_.insert(l);
          break;
        case Line::Pending:
          break;  // benign: both flushes ride the next fence
        case Line::Durable:
          if (line_matches_durable(l)) {
            found.push_back(make_violation(
                SanRule::RedundantFlush, l * kLine, kLine,
                "flush of an already-durable line no store re-dirtied"));
          } else {
            // Raw re-store since the last fence: implicit store.
            it->second = Line::Pending;
            pending_.insert(l);
          }
          break;
      }
    }
  }
  deliver(std::move(found));
}

void PmemSan::on_fence() {
  const std::lock_guard<std::mutex> lock(mu_);
  for (const std::uint64_t l : pending_) {
    const std::uint64_t off = l * kLine;
    if (off >= durable_.size()) continue;
    const std::uint64_t n =
        std::min<std::uint64_t>(kLine, durable_.size() - off);
    std::memcpy(durable_.data() + off, live_ + off, n);
    lines_[l] = Line::Durable;
  }
  pending_.clear();
}

void PmemSan::on_persist(std::uint64_t off, std::uint64_t len) {
  for (const auto& [s, st] : t_last_store) {
    if (s != this) continue;
    if (st.off == off && len < st.len) {
      // Benign inside a transaction that covers the stored range: commit
      // flushes every covered line, so the narrow persist leaves no tail.
      if (const std::uint32_t* lane = tx_lane_of(this); lane != nullptr) {
        const std::lock_guard<std::mutex> lock(mu_);
        const TxCtx& ctx = tx_[*lane];
        if (ctx.active && covered(ctx, st.off, st.off + st.len)) return;
      }
      std::vector<SanViolation> found;
      found.push_back(make_violation(
          SanRule::PersistTooSmall, off, len,
          "persist of " + std::to_string(len) + " bytes after a store of " +
              std::to_string(st.len) +
              " bytes at the same offset leaves a tail unflushed"));
      deliver(std::move(found));
    }
    return;
  }
}

void PmemSan::remap(const std::byte* live, std::size_t size) {
  const std::lock_guard<std::mutex> lock(mu_);
  const std::size_t old = durable_.size();
  live_ = live;
  durable_.resize(size);
  if (size > old) {
    // Grown bytes are durable the moment ftruncate returns (kernel zero
    // page -> file, no cache in between) — same contract as ShadowTracker.
    std::memcpy(durable_.data() + old, live_ + old, size - old);
  } else if (size < old) {
    const std::uint64_t lines = (size + kLine - 1) / kLine;
    std::erase_if(lines_, [&](const auto& e) { return e.first >= lines; });
    std::erase_if(pending_, [&](std::uint64_t l) { return l >= lines; });
  }
}

void PmemSan::discard(std::uint64_t off, std::uint64_t len) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (off >= durable_.size()) return;
  const std::uint64_t n =
      std::min<std::uint64_t>(len, durable_.size() - off);
  std::memcpy(durable_.data() + off, live_ + off, n);
}

void PmemSan::tx_begin(std::uint32_t lane) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    tx_[lane].active = true;
    tx_[lane].coverage.clear();
  }
  t_tx_lane.emplace_back(this, lane);
}

void PmemSan::tx_cover(std::uint32_t lane, std::uint64_t off,
                       std::uint64_t len) {
  if (len == 0) return;
  const std::lock_guard<std::mutex> lock(mu_);
  TxCtx& ctx = tx_[lane];
  std::uint64_t end = off + len;
  auto it = ctx.coverage.upper_bound(off);
  if (it != ctx.coverage.begin() && std::prev(it)->second >= off) --it;
  while (it != ctx.coverage.end() && it->first <= end) {
    off = std::min(off, it->first);
    end = std::max(end, it->second);
    it = ctx.coverage.erase(it);
  }
  ctx.coverage.emplace(off, end);
}

void PmemSan::tx_commit_publish(std::uint32_t lane) {
  std::vector<SanViolation> found;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    const TxCtx& ctx = tx_[lane];
    if (!ctx.active) return;
    for (const auto& [off, end] : ctx.coverage) {
      // Byte-precise, not line-state: a neighbour transaction's store
      // annotation re-marks a shared line Stored even after this lane
      // flushed and fenced its own bytes (e.g. adjacent 8-byte slots on
      // one line).  What R2 actually requires is that the bytes THIS
      // transaction covers are durable when its commit record publishes.
      const std::uint64_t hi = std::min<std::uint64_t>(end, durable_.size());
      if (hi <= off ||
          std::memcmp(live_ + off, durable_.data() + off, hi - off) == 0)
        continue;
      std::uint64_t b = off;
      while (live_[b] == durable_[b]) ++b;
      const std::uint64_t l = b / kLine;
      const auto it = lines_.find(l);
      const bool pend = it != lines_.end() && it->second == Line::Pending;
      found.push_back(make_violation(
          SanRule::UnflushedCommit, l * kLine, kLine,
          std::string("commit record published while a covered line is ") +
              (pend ? "flushed but not fenced" : "not flushed")));
      // One report per covered range keeps the output readable.
    }
  }
  deliver(std::move(found));
}

void PmemSan::tx_end(std::uint32_t lane) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    tx_[lane].active = false;
    tx_[lane].coverage.clear();
  }
  std::erase_if(t_tx_lane, [&](const auto& e) {
    return e.first == this && e.second == lane;
  });
}

void PmemSan::tx_abort(std::uint32_t lane) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    TxCtx& ctx = tx_[lane];
    for (const auto& [off, end] : ctx.coverage) {
      const std::uint64_t first = off / kLine;
      const std::uint64_t last = (end - 1) / kLine;
      for (std::uint64_t l = first; l <= last; ++l) {
        const auto it = lines_.find(l);
        const bool tracked = it != lines_.end() && it->second != Line::Durable;
        if (!tracked && line_matches_durable(l)) continue;
        // Undo-snapshotted ranges were restored and persisted by the
        // rollback; what remains non-durable here is fresh-allocation
        // content the AllocAction rollback just freed.  Dead bytes owe
        // nobody a flush.
        if (it != lines_.end()) {
          lines_.erase(it);
          pending_.erase(l);
        }
        const std::uint64_t loff = l * kLine;
        if (loff < durable_.size()) {
          const std::uint64_t n =
              std::min<std::uint64_t>(kLine, durable_.size() - loff);
          std::memcpy(durable_.data() + loff, live_ + loff, n);
        }
      }
    }
    ctx.active = false;
    ctx.coverage.clear();
  }
  std::erase_if(t_tx_lane, [&](const auto& e) {
    return e.first == this && e.second == lane;
  });
}

std::size_t PmemSan::scan_not_durable(std::size_t max_reports,
                                      const char* when) {
  std::vector<SanViolation> found;
  std::size_t dirty = 0;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    const std::uint64_t line_count = (durable_.size() + kLine - 1) / kLine;
    for (std::uint64_t l = 0; l < line_count; ++l) {
      const auto it = lines_.find(l);
      const char* how = nullptr;
      if (it != lines_.end() && it->second == Line::Stored)
        how = "stored but never flushed";
      else if (it != lines_.end() && it->second == Line::Pending)
        how = "flushed but never fenced";
      else if (!line_matches_durable(l))
        how = "raw-stored (no annotation) and never flushed";
      if (how == nullptr) continue;
      ++dirty;
      if (found.size() < max_reports)
        found.push_back(make_violation(
            SanRule::DirtyAtClose, l * kLine, kLine,
            std::string(how) + " — not durable at " + when));
    }
  }
  deliver(std::move(found));
  return dirty;
}

std::size_t PmemSan::verify(std::size_t max_reports) {
  return scan_not_durable(max_reports, "verify()");
}

std::size_t PmemSan::close_check(std::size_t max_reports) {
  return scan_not_durable(max_reports, "pool close");
}

}  // namespace cxlpmem::pmemkit
