// pmemkit/mapped_file.hpp — RAII memory-mapped pool backing file.
//
// This is the stand-in for a DAX mapping of real persistent media: the file
// plays the role of the persistence domain.  Mapping is MAP_SHARED, so the
// image survives process exit exactly like media survives power-down — the
// *crash-consistency* question (which unflushed stores survive?) is answered
// separately by ShadowTracker.
#pragma once

#include <cstddef>
#include <filesystem>
#include <string>

namespace cxlpmem::pmemkit {

class MappedFile {
 public:
  /// Creates a file of `size` bytes (zero-filled) and maps it.  Fails if the
  /// file already exists.
  static MappedFile create(const std::filesystem::path& path,
                           std::size_t size);

  /// Maps an existing file read-write at its current size.
  static MappedFile open(const std::filesystem::path& path);

  MappedFile() = default;
  MappedFile(MappedFile&& o) noexcept { *this = std::move(o); }
  MappedFile& operator=(MappedFile&& o) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile();

  [[nodiscard]] std::byte* data() const noexcept { return data_; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] const std::filesystem::path& path() const noexcept {
    return path_;
  }
  [[nodiscard]] bool valid() const noexcept { return data_ != nullptr; }

  /// Flushes the whole mapping to the backing file (msync).  Used on clean
  /// close; crash simulation bypasses this on purpose.
  void sync();

  /// Resizes the backing file (ftruncate) and remaps it (mremap, which may
  /// move the mapping — callers must re-derive every raw pointer from
  /// data()).  Both failure modes surface as PoolError(ErrKind::Io) with
  /// the failing path and errno in the message; on failure the mapping is
  /// left at its original size and stays valid.
  void resize(std::size_t new_size);

 private:
  std::byte* data_ = nullptr;
  std::size_t size_ = 0;
  int fd_ = -1;
  std::filesystem::path path_;
};

}  // namespace cxlpmem::pmemkit
