// pmemkit/introspect.hpp — offline pool inspection (the `pmempool info` /
// `pmempool check` equivalent).
//
// Reads a pool through the normal mapping and reports its header identity,
// lane states (was a transaction in flight?), heap occupancy and per-type
// object census — plus a structural consistency check that walks the heap
// with the same invariants rebuild() enforces and cross-checks the object
// census against the allocation bitmaps.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "pmemkit/pool.hpp"

namespace cxlpmem::pmemkit {

struct LaneSummary {
  std::uint32_t index = 0;
  LaneState state = LaneState::Idle;
  /// Published undo-log bytes (the checksum-valid entry prefix recovery
  /// would act on).  0 means a redo-only entry (Idle lane with a published
  /// redo log); lanes other threads are actively transacting on never
  /// appear here at all — see PoolReport::lanes_in_flight.
  std::uint64_t undo_bytes = 0;
  bool redo_published = false;
};

struct TypeCensusRow {
  std::uint32_t type_num = 0;
  std::uint64_t objects = 0;
  std::uint64_t usable_bytes = 0;
};

struct PoolReport {
  // Identity.
  std::string layout;
  std::uint64_t pool_id = 0;
  std::uint64_t pool_size = 0;
  bool clean_shutdown = false;
  bool has_root = false;
  std::uint64_t root_size = 0;

  // Activity.
  /// Non-idle lanes, among those inspect() may scan race-free: lanes in
  /// the free pool and the calling thread's own transaction lane.  Lanes
  /// other threads are actively transacting on are never read (their
  /// headers and logs are in motion) — they are counted instead.
  std::vector<LaneSummary> busy_lanes;
  /// Lanes checked out by other threads' in-flight operations at the time
  /// of inspection (not scanned, not in busy_lanes).  Always 0 when
  /// inspecting a pool no other thread is using — the offline
  /// `pmempool check` style use this report is built for.
  std::uint64_t lanes_in_flight = 0;
  HeapStats heap;
  std::vector<TypeCensusRow> census;    ///< by ascending type_num

  // Consistency.
  bool consistent = false;
  std::vector<std::string> problems;
};

/// Inspects an open pool (non-destructive).
[[nodiscard]] PoolReport inspect(const ObjectPool& pool);

/// Renders a report the way `pmempool info` would.
[[nodiscard]] std::string to_text(const PoolReport& report);

}  // namespace cxlpmem::pmemkit
