// pmemkit/introspect.hpp — offline pool inspection (the `pmempool info` /
// `pmempool check` equivalent).
//
// Reads a pool through the normal mapping and reports its header identity,
// lane states (was a transaction in flight?), heap occupancy and per-type
// object census — plus a structural consistency check that walks the heap
// with the same invariants rebuild() enforces and cross-checks the object
// census against the allocation bitmaps.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "pmemkit/pool.hpp"

namespace cxlpmem::pmemkit {

struct LaneSummary {
  std::uint32_t index = 0;
  LaneState state = LaneState::Idle;
  std::uint64_t undo_bytes = 0;  ///< published undo-log bytes
  bool redo_published = false;
};

struct TypeCensusRow {
  std::uint32_t type_num = 0;
  std::uint64_t objects = 0;
  std::uint64_t usable_bytes = 0;
};

struct PoolReport {
  // Identity.
  std::string layout;
  std::uint64_t pool_id = 0;
  std::uint64_t pool_size = 0;
  bool clean_shutdown = false;
  bool has_root = false;
  std::uint64_t root_size = 0;

  // Activity.
  std::vector<LaneSummary> busy_lanes;  ///< non-idle lanes only
  HeapStats heap;
  std::vector<TypeCensusRow> census;    ///< by ascending type_num

  // Consistency.
  bool consistent = false;
  std::vector<std::string> problems;
};

/// Inspects an open pool (non-destructive).
[[nodiscard]] PoolReport inspect(const ObjectPool& pool);

/// Renders a report the way `pmempool info` would.
[[nodiscard]] std::string to_text(const PoolReport& report);

}  // namespace cxlpmem::pmemkit
