// pmemkit/tx.hpp — undo-log transactions (libpmemobj tx equivalent).
//
// Protocol (per lane), layout version 2:
//   begin   : lane.undo_gen += 1, then lane.state = Active — both stores in
//             the lane's first cache line, gen ordered before state,
//             published with ONE flush+drain
//   snapshot: entry {header incl. gen + checksum, pre-image} appended and
//             persisted — ONE fenced persist is the publish point; the
//             entry validates itself, so no tail bump is needed.  One
//             add_range may append several gap entries (see below); they
//             are staged back-to-back and published under the same fence.
//   alloc   : AllocAction entry appended BEFORE the allocator's redo commit,
//             so a crash can never leak the object
//   free    : FreeAction entry appended; the object stays live until commit
//   commit  : flush each merged snapshot range once -> state = Committed ->
//             perform deferred frees -> retire (state = Idle, tail = 0,
//             one fenced line write)
//   abort   : apply entries in REVERSE (pre-images back, fresh allocs freed)
//             -> retire
//
// The live tail is transient (Transaction::tail_).  Recovery (pool open)
// per lane: finish any published redo, then
//   Active    -> scan entries from the log start until the first one whose
//                generation or checksum fails (the torn end), abort path
//   Committed -> same scan, re-run deferred frees (idempotent), retire
// so the user-visible invariant is: after a crash, every transaction is
// either fully applied or fully rolled back.  The scan is sound because
// entries are appended strictly in order, each behind its own fence: the
// durable log is always a checksum-valid prefix of what was published, and
// the per-entry generation keeps a stale entry from an earlier transaction
// on the same lane from extending that prefix.  The trade against the
// version-1 persistent tail: a media corruption inside the log is now
// indistinguishable from a torn tail and silently truncates the scan
// instead of throwing CorruptImage.
//
// Snapshot bookkeeping is a sorted interval set that merges overlapping and
// adjacent ranges: a range already covered appends nothing, a partial
// overlap snapshots only the uncovered gaps, and commit flushes every
// merged range exactly once.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "pmemkit/layout.hpp"
#include "pmemkit/oid.hpp"

namespace cxlpmem::pmemkit {

class ObjectPool;

/// How a transaction publishes undo entries.  TwoPersistReference is the
/// pre-version-2 protocol kept compiled-in as the benchmark baseline: every
/// entry costs a second fenced persist for the tail bump, and add_range
/// falls back to the O(n) full-cover-only snapshot scan.  Recovery treats
/// pools written by either mode identically (the scan ignores the
/// persistent tail).
enum class TxPublish {
  SingleFence,
  TwoPersistReference,
};

class Transaction {
 public:
  Transaction(const Transaction&) = delete;
  Transaction& operator=(const Transaction&) = delete;

  /// Snapshots [ptr, ptr+len) so an abort/crash restores it; the caller may
  /// then modify the range freely.  `ptr` must lie inside the pool.  Parts
  /// of the range already covered by earlier snapshots (or fresh ranges) of
  /// this transaction are coalesced away — only the uncovered gaps are
  /// logged, all published under a single fence.
  void add_range(void* ptr, std::size_t len);

  /// Registers [ptr, ptr+len) as freshly allocated *by this transaction*:
  /// the range is flushed at commit and covers later add_range calls (so
  /// snapshot-on-write fields inside it burn no undo entries), but no
  /// pre-image is logged — on abort/crash the allocation itself is rolled
  /// back, which discards the bytes wholesale.  Never use it on memory that
  /// existed before the transaction.
  void add_fresh_range(void* ptr, std::size_t len);

  /// Allocates inside the transaction; freed automatically on abort.  When
  /// logging the allocation overflows the undo log, the staged heap state
  /// is cancelled before the error propagates — nothing leaks.
  ObjId alloc(std::uint64_t size, std::uint32_t type_num, bool zero = false);

  /// Schedules a free for commit time (the object stays readable until
  /// then, and survives if the transaction aborts).
  void free_obj(ObjId oid);

  [[nodiscard]] bool committed() const noexcept { return committed_; }

  /// The lane this transaction runs on — observable so a LaneSession
  /// holder (and its tests) can pin that batched commits stay on one lane.
  [[nodiscard]] std::uint32_t lane() const noexcept { return lane_; }

 private:
  friend class ObjectPool;

  explicit Transaction(ObjectPool& pool, std::uint32_t lane);
  ~Transaction() = default;

  void begin();
  void commit();
  void abort();

  /// Appends one undo entry (payload may be null for actions), published by
  /// its own checksum under one fenced persist (plus the reference mode's
  /// tail bump).
  void append_entry(UndoKind kind, std::uint64_t off, std::uint64_t len,
                    const void* payload);

  /// Writes one entry at tail_ without persisting; add_range uses it to
  /// stage several gap entries and publish them under a single fence.  The
  /// caller has already checked the log has room.
  void stage_entry(UndoKind kind, std::uint64_t off, std::uint64_t len,
                   const void* payload);

  /// Merges [off, end) into the covered-interval set.
  void cover(std::uint64_t off, std::uint64_t end);

  /// Reference-mode add_range: the version-1 O(n) full-cover-only scan.
  void add_range_reference(std::uint64_t off, std::size_t len,
                           const void* ptr);

  struct Range {
    std::uint64_t off;
    std::uint64_t len;
  };

  ObjectPool* pool_;
  std::uint32_t lane_;
  /// Covered ranges (snapshots + fresh), merged: start -> end.  Transient;
  /// commit flushes each exactly once.
  std::map<std::uint64_t, std::uint64_t> snapshots_;
  /// Reference-mode bookkeeping (TwoPersistReference only).
  std::vector<Range> ref_snapshots_;
  std::uint64_t tail_ = 0;  ///< transient undo tail (bytes staged)
  std::uint64_t gen_ = 0;   ///< this transaction's log generation
  bool committed_ = false;
  bool finished_ = false;
};

/// Lane log recovery — shared by Transaction::abort and pool open.
/// Returns true when any persistent state was changed.
bool recover_lane(ObjectPool& pool, std::uint32_t lane);

/// Bytes of the checksum-valid, generation-`gen` entry prefix at the head
/// of a lane's undo log — the published log recovery would act on.  Used by
/// introspection now that the live tail is transient.
[[nodiscard]] std::uint64_t undo_published_bytes(const std::byte* undo,
                                                 std::uint64_t gen);

}  // namespace cxlpmem::pmemkit
