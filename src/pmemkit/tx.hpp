// pmemkit/tx.hpp — undo-log transactions (libpmemobj tx equivalent).
//
// Protocol (per lane):
//   begin   : lane.state = Active, undo_tail = 0                 (persisted)
//   snapshot: entry {header, pre-image} appended and persisted, THEN
//             undo_tail bumped and persisted — tail is the publish point
//   alloc   : AllocAction entry appended BEFORE the allocator's redo commit,
//             so a crash can never leak the object
//   free    : FreeAction entry appended; the object stays live until commit
//   commit  : flush user ranges -> state = Committed -> perform deferred
//             frees -> state = Idle, tail = 0
//   abort   : apply entries in REVERSE (pre-images back, fresh allocs freed)
//             -> state = Idle
//
// Recovery (pool open) per lane: finish any published redo, then
//   Active    -> abort path (pre-tx state restored)
//   Committed -> re-run deferred frees (idempotent), retire
// so the user-visible invariant is: after a crash, every transaction is
// either fully applied or fully rolled back.
#pragma once

#include <cstdint>
#include <vector>

#include "pmemkit/layout.hpp"
#include "pmemkit/oid.hpp"

namespace cxlpmem::pmemkit {

class ObjectPool;

class Transaction {
 public:
  Transaction(const Transaction&) = delete;
  Transaction& operator=(const Transaction&) = delete;

  /// Snapshots [ptr, ptr+len) so an abort/crash restores it; the caller may
  /// then modify the range freely.  `ptr` must lie inside the pool.  A range
  /// fully covered by an earlier snapshot of this transaction is coalesced
  /// away (the first snapshot already holds the pre-image to restore).
  void add_range(void* ptr, std::size_t len);

  /// Registers [ptr, ptr+len) as freshly allocated *by this transaction*:
  /// the range is flushed at commit and covers later add_range calls (so
  /// snapshot-on-write fields inside it burn no undo entries), but no
  /// pre-image is logged — on abort/crash the allocation itself is rolled
  /// back, which discards the bytes wholesale.  Never use it on memory that
  /// existed before the transaction.
  void add_fresh_range(void* ptr, std::size_t len);

  /// Allocates inside the transaction; freed automatically on abort.  When
  /// logging the allocation overflows the undo log, the staged heap state
  /// is cancelled before the error propagates — nothing leaks.
  ObjId alloc(std::uint64_t size, std::uint32_t type_num, bool zero = false);

  /// Schedules a free for commit time (the object stays readable until
  /// then, and survives if the transaction aborts).
  void free_obj(ObjId oid);

  [[nodiscard]] bool committed() const noexcept { return committed_; }

 private:
  friend class ObjectPool;

  explicit Transaction(ObjectPool& pool, std::uint32_t lane);
  ~Transaction() = default;

  void begin();
  void commit();
  void abort();

  /// Appends one undo entry (payload may be null for actions) and publishes
  /// it by bumping the tail.
  void append_entry(UndoKind kind, std::uint64_t off, std::uint64_t len,
                    const void* payload);

  struct Range {
    std::uint64_t off;
    std::uint64_t len;
  };

  ObjectPool* pool_;
  std::uint32_t lane_;
  std::vector<Range> snapshots_;  // transient: ranges to flush at commit
  bool committed_ = false;
  bool finished_ = false;
};

/// Lane log recovery — shared by Transaction::abort and pool open.
/// Returns true when any persistent state was changed.
bool recover_lane(ObjectPool& pool, std::uint32_t lane);

}  // namespace cxlpmem::pmemkit
