#include "pmemkit/pool.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <random>
#include <shared_mutex>
#include <utility>

#include "pmemkit/checksum.hpp"
#include "pmemkit/crash_hook.hpp"
#include "pmemkit/evolve.hpp"
#include "pmemkit/redo.hpp"

namespace cxlpmem::pmemkit {

// Shared with the evolution seals (evolve.cpp), which must stage the
// successor checksum in the same redo commit that rewrites version or
// pool_size.  Contract documented at the declaration (evolve.hpp).
std::uint64_t header_checksum(const PoolHeader& h) {
  PoolHeader probe = h;
  probe.flags = 0;
  probe.root_off = 0;
  probe.root_size = 0;
  probe.checksum = 0;
  return fletcher64(&probe, sizeof(probe));
}

namespace {

std::uint64_t random_pool_id() {
  static std::mt19937_64 rng{std::random_device{}()};
  std::uint64_t id = 0;
  while (id == 0) id = rng();
  return id;
}

/// CXLPMEM_PMEMCHECK=1 turns the sanitizer on for every pool in the
/// process, regardless of PoolOptions — how the CI pmemcheck job runs the
/// whole suite under PmemSan without touching each test.
[[nodiscard]] bool env_pmemcheck() noexcept {
  const char* v = std::getenv("CXLPMEM_PMEMCHECK");
  return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
}

/// Per-thread open transactions, keyed by pool (a thread may use several
/// pools, but at most one open transaction per pool).
thread_local std::vector<std::pair<const ObjectPool*, Transaction*>>
    t_current_tx;

/// Per-thread pinned lanes (LaneSession), keyed by pool.  Checked by
/// acquire_tx_lane before the free-pool mutex: a thread holding a session
/// runs every transaction on its pinned lane for free.
thread_local std::vector<std::pair<const ObjectPool*, std::uint32_t>>
    t_lane_sessions;

[[nodiscard]] const std::uint32_t* session_lane_of(
    const ObjectPool* pool) noexcept {
  for (const auto& [p, lane] : t_lane_sessions)
    if (p == pool) return &lane;
  return nullptr;
}

/// Process-wide registry of open pools, in open order.  Registration only
/// happens on pool open/close; every mutation bumps g_pools_gen so the
/// thread-local lookup caches below know their entries went stale.  The
/// locked scan is only the cache-miss slow path.
std::shared_mutex g_pools_mu;
std::vector<ObjectPool*> g_pools;
std::atomic<std::uint64_t> g_pools_gen{1};

void register_pool(ObjectPool* pool) {
  const std::unique_lock lock(g_pools_mu);
  g_pools.push_back(pool);
  g_pools_gen.fetch_add(1, std::memory_order_release);
}

void unregister_pool(ObjectPool* pool) {
  const std::unique_lock lock(g_pools_mu);
  std::erase(g_pools, pool);
  g_pools_gen.fetch_add(1, std::memory_order_release);
}

/// Thread-local registry lookup cache.  Entries are valid only while
/// `gen` matches g_pools_gen — any pool open/close resets the whole cache,
/// so a hit can never return a closed pool or shadow a newer same-id one
/// ("most recently opened wins" re-resolves through the slow path).  Only
/// positive results are cached; a nullptr answer is the throw-side path of
/// every caller and stays on the locked scan.
constexpr std::size_t kLookupCacheSlots = 4;

struct LookupCache {
  std::uint64_t gen = 0;
  struct ById {
    std::uint64_t pool_id = 0;
    ObjectPool* pool = nullptr;
  };
  struct ByAddr {
    const std::byte* base = nullptr;
    std::size_t size = 0;
    ObjectPool* pool = nullptr;
  };
  std::array<ById, kLookupCacheSlots> by_id{};
  std::array<ByAddr, kLookupCacheSlots> by_addr{};
  std::size_t id_clock = 0;
  std::size_t addr_clock = 0;

  /// Revalidates against the registry generation; stale => emptied.
  void refresh() noexcept {
    const std::uint64_t now = g_pools_gen.load(std::memory_order_acquire);
    if (gen != now) {
      *this = LookupCache{};
      gen = now;
    }
  }
};

thread_local LookupCache t_lookup_cache;

}  // namespace

std::uint64_t pool_registry_generation() noexcept {
  return g_pools_gen.load(std::memory_order_acquire);
}

void detail::bump_pool_generation() noexcept {
  g_pools_gen.fetch_add(1, std::memory_order_release);
}

ObjectPool* pool_by_id(std::uint64_t pool_id) noexcept {
  LookupCache& cache = t_lookup_cache;
  cache.refresh();
  for (const auto& e : cache.by_id)
    if (e.pool != nullptr && e.pool_id == pool_id) return e.pool;

  ObjectPool* found = nullptr;
  {
    const std::shared_lock lock(g_pools_mu);
    for (auto it = g_pools.rbegin(); it != g_pools.rend(); ++it)
      if ((*it)->pool_id() == pool_id) {
        found = *it;
        break;
      }
  }
  if (found != nullptr)
    cache.by_id[cache.id_clock++ % kLookupCacheSlots] = {pool_id, found};
  return found;
}

ObjectPool* pool_containing(const void* p) noexcept {
  const auto* b = static_cast<const std::byte*>(p);
  LookupCache& cache = t_lookup_cache;
  cache.refresh();
  for (const auto& e : cache.by_addr)
    if (e.pool != nullptr && b >= e.base && b < e.base + e.size)
      return e.pool;

  ObjectPool* found = nullptr;
  const std::byte* base = nullptr;
  std::size_t size = 0;
  {
    const std::shared_lock lock(g_pools_mu);
    for (auto it = g_pools.rbegin(); it != g_pools.rend(); ++it) {
      PersistentRegion& region = (*it)->region();
      if (b >= region.base() && b < region.base() + region.size()) {
        found = *it;
        base = region.base();
        size = region.size();
        break;
      }
    }
  }
  if (found != nullptr)
    cache.by_addr[cache.addr_clock++ % kLookupCacheSlots] = {base, size,
                                                             found};
  return found;
}

ObjectPool* tx_pool_containing(const void* p) noexcept {
  const auto* b = static_cast<const std::byte*>(p);
  for (const auto& [pool, tx] : t_current_tx) {
    PersistentRegion& region = const_cast<ObjectPool*>(pool)->region();
    if (b >= region.base() && b < region.base() + region.size())
      return const_cast<ObjectPool*>(pool);
  }
  return nullptr;
}

bool thread_in_tx() noexcept { return !t_current_tx.empty(); }

ObjectPool::ObjectPool(MappedFile file, Options options)
    : region_(std::move(file), options.track_shadow,
              options.pmemcheck || env_pmemcheck()),
      path_(region_.file().path()),
      tx_publish_(options.tx_publish) {
  if (PmemSan* san = region_.pmemsan())
    san->set_meta_bound(kHeaderSize + kLaneCount * kLaneSize);
  free_lanes_.reserve(kLaneCount);
  for (std::uint32_t l = 0; l < kLaneCount; ++l) free_lanes_.push_back(l);
}

ObjectPool::OpLane::OpLane(ObjectPool& pool) : pool_(pool) {
  if (Transaction* tx = pool.current_tx(); tx != nullptr) {
    lane_ = tx->lane_;
    owned_ = false;
  } else {
    lane_ = pool.acquire_tx_lane();
    owned_ = true;
  }
}

ObjectPool::OpLane::~OpLane() {
  if (owned_) pool_.release_tx_lane(lane_);
}

std::unique_ptr<ObjectPool> ObjectPool::create(
    const std::filesystem::path& path, std::string_view layout,
    std::uint64_t size, Options options) {
  FileResource resource(path);
  return create(resource, layout, size, options);
}

std::unique_ptr<ObjectPool> ObjectPool::open(
    const std::filesystem::path& path, std::string_view layout,
    Options options) {
  FileResource resource(path);
  return open(resource, layout, options);
}

std::unique_ptr<ObjectPool> ObjectPool::create(PmemResource& resource,
                                               std::string_view layout,
                                               std::uint64_t size,
                                               Options options) {
  if (layout.size() >= kLayoutNameMax)
    throw PoolError(ErrKind::LayoutTooLong, "layout name too long");
  if (size < min_pool_size())
    throw PoolError(ErrKind::PoolTooSmall,
                    "pool size below minimum (" +
                        std::to_string(min_pool_size()) + " bytes)");

  auto pool = std::unique_ptr<ObjectPool>(
      new ObjectPool(resource.map_create(size), options));

  PoolHeader& h = pool->header();
  h.magic = kPoolMagic;
  h.version = kPoolVersion;
  h.flags = 0;  // open (dirty) until clean shutdown
  h.layout.fill('\0');
  // pmemlint: allow(header formatting precedes the first persist below)
  std::memcpy(h.layout.data(), layout.data(), layout.size());
  h.pool_id = random_pool_id();
  h.pool_size = size;
  h.lane_off = kHeaderSize;
  h.lane_count = kLaneCount;
  h.lane_size = kLaneSize;
  h.heap_off = kHeaderSize + kLaneCount * kLaneSize;
  h.heap_size = size - h.heap_off;
  h.root_off = 0;
  h.root_size = 0;
  h.checksum = header_checksum(h);
  pool->region_.note_store_infra(&h, sizeof(h));
  pool->persist(&h, sizeof(h));

  // Lanes are zero (Idle) in a fresh file; only the heap needs formatting.
  pool->heap_ = std::make_unique<Heap>(pool->region_, h.heap_off, h.heap_size);
  pool->heap_->format();
  register_pool(pool.get());
  return pool;
}

std::unique_ptr<ObjectPool> ObjectPool::open(PmemResource& resource,
                                             std::string_view layout,
                                             Options options) {
  auto pool = std::unique_ptr<ObjectPool>(
      new ObjectPool(resource.map_open(), options));

  // Guard every header read behind the mapped length: a truncated file must
  // produce a typed error, not a fault on the first field access.
  if (pool->size() < sizeof(PoolHeader))
    throw PoolError(ErrKind::CorruptImage,
                    "pool file too short for its header: " +
                        resource.describe());
  if (pool->header().magic != kPoolMagic)
    throw PoolError(ErrKind::NotAPool,
                    "not a pmemkit pool: " + resource.describe());

  // An interrupted migration/resize must be handled before the checks
  // below: its sealing commit may be published-but-unapplied, and a Resize
  // marker legitimately leaves the file a different length than the header.
  // A simulated power cut inside this window (the migration crash sweep)
  // unwinds through the pool's destructor — mark the handle crashed first
  // so the teardown does not stamp a clean shutdown onto the "dead" image.
  bool evolved = false;
  try {
    evolved = recover_evolution(*pool, options.migrate);

    if (pool->header().version == kPoolVersionV1) {
      if (!options.migrate)
        throw PoolError(ErrKind::VersionMismatch,
                        "pool is layout version 1; open with "
                        "PoolOptions::migrate to upgrade it");
      migrate_v1_pool(*pool, layout);
      evolved = true;  // survives run_recovery() overwriting recovered_
    }
  } catch (const CrashInjected&) {
    pool->mark_crashed();
    throw;
  }

  const PoolHeader& h = pool->header();
  if (h.version != kPoolVersion)
    throw PoolError(ErrKind::VersionMismatch, "pool version mismatch");
  if (h.checksum != header_checksum(h))
    throw PoolError(ErrKind::ChecksumMismatch,
                    "pool header checksum mismatch");
  if (h.pool_size != pool->size())
    throw PoolError(ErrKind::SizeMismatch, "pool size mismatch");
  if (std::string_view(h.layout.data()) != layout)
    throw PoolError(ErrKind::LayoutMismatch,
                    "layout mismatch: pool has '" +
                        std::string(h.layout.data()) + "', caller wants '" +
                        std::string(layout) + "'");

  pool->heap_ = std::make_unique<Heap>(pool->region_, h.heap_off, h.heap_size);

  // Span table: count == 0 is the implicit single span every pre-table
  // image carries; a non-zero table must self-validate and agree with the
  // header about the base span.
  const auto& table = *reinterpret_cast<const SpanTable*>(
      pool->region_.base() + kSpanTableOff);
  if (table.count != 0) {
    if (table.count > kMaxHeapSpans ||
        table.checksum != span_table_checksum(table))
      throw PoolError(ErrKind::CorruptImage, "span table checksum mismatch");
    if (table.spans[0].off != h.heap_off || table.spans[0].size != h.heap_size)
      throw PoolError(ErrKind::CorruptImage,
                      "span table disagrees with the header's base span");
    for (std::uint64_t i = 1; i < table.count; ++i)
      pool->heap_->adopt_span(table.spans[i].off, table.spans[i].size);
  }
  pool->heap_->rebuild();
  pool->run_recovery();
  pool->recovered_ = pool->recovered_ || evolved;
  register_pool(pool.get());
  return pool;
}

ObjectPool::~ObjectPool() {
  unregister_pool(this);
  if (crashed_) return;  // crash simulation: leave the image as-is
  // Closing with stored-but-not-durable lines outstanding is R5; the
  // destructor is noexcept, so a throwing sink cannot unwind from here —
  // a violation this late is a hard stop.
  if (PmemSan* san = region_.pmemsan()) {
    try {
      san->close_check();
    } catch (const PoolError& e) {
      std::fprintf(stderr, "pmemsan: violation at pool close: %s\n", e.what());
      std::abort();
    }
  }
  PoolHeader& h = header();
  h.flags |= kFlagCleanShutdown;
  region_.note_store_infra(&h.flags, sizeof(h.flags));
  persist(&h.flags, sizeof(h.flags));
  region_.file().sync();
}

void ObjectPool::run_recovery() {
  PoolHeader& h = header();
  bool any = (h.flags & kFlagCleanShutdown) == 0;
  for (std::uint32_t l = 0; l < h.lane_count; ++l)
    any = recover_lane(*this, l) || any;
  recovered_ = any;
  // Mark open (dirty) for the lifetime of this handle.
  h.flags &= ~kFlagCleanShutdown;
  region_.note_store_infra(&h.flags, sizeof(h.flags));
  persist(&h.flags, sizeof(h.flags));
}

std::uint64_t ObjectPool::pool_id() const noexcept {
  return header().pool_id;
}

std::string ObjectPool::layout() const {
  return std::string(header().layout.data());
}

void* ObjectPool::direct(ObjId oid) {
  if (oid.is_null()) throw PoolError(ErrKind::BadOid, "direct() on null oid");
  if (oid.pool_id != pool_id()) throw PoolError(ErrKind::BadOid, "oid from another pool");
  if (oid.off >= size()) throw PoolError(ErrKind::BadOid, "oid offset out of range");
  return region_.base() + oid.off;
}

const void* ObjectPool::direct(ObjId oid) const {
  return const_cast<ObjectPool*>(this)->direct(oid);
}

void* ObjectPool::direct_checked(ObjId oid, std::uint32_t expected_type) {
  void* p = direct(oid);
  const std::uint32_t actual = heap_->type_of_synced(oid.off);
  if (actual != expected_type)
    throw PoolError(ErrKind::TypeMismatch,
                    "object at offset " + std::to_string(oid.off) +
                        " has type number " + std::to_string(actual) +
                        ", caller expected " + std::to_string(expected_type));
  return p;
}

ObjId ObjectPool::oid_for(const void* p) const {
  const auto* b = static_cast<const std::byte*>(p);
  if (b < region_.base() || b >= region_.base() + size())
    throw PoolError(ErrKind::BadOid, "pointer not inside pool");
  return ObjId{pool_id(),
               static_cast<std::uint64_t>(b - region_.base())};
}

LaneHeader& ObjectPool::lane_header(std::uint32_t lane) noexcept {
  return *reinterpret_cast<LaneHeader*>(region_.base() + lane_off(lane));
}

std::byte* ObjectPool::lane_undo(std::uint32_t lane) noexcept {
  return region_.base() + lane_off(lane) + sizeof(LaneHeader);
}

std::uint64_t ObjectPool::lane_off(std::uint32_t lane) const noexcept {
  return header().lane_off + std::uint64_t{lane} * header().lane_size;
}

ObjId ObjectPool::alloc_atomic(std::uint64_t size, std::uint32_t type_num,
                               ObjId* dest, bool zero) {
  const OpLane lane(*this);
  RedoSession session(region_, lane_header(lane.lane()).redo);
  PreparedAlloc pa = heap_->stage_alloc(session, size, type_num, zero);
  const ObjId id{pool_id(), pa.data_off};

  const auto* dp = reinterpret_cast<const std::byte*>(dest);
  const bool dest_in_pool =
      dest != nullptr && dp >= region_.base() && dp < region_.base() + this->size();
  try {
    if (dest_in_pool)
      session.stage_oid(region_.offset_of(dest), id);
    session.commit();
  } catch (const CrashInjected&) {
    throw;  // power cut: the staged state is the crash image under test
  } catch (...) {
    heap_->cancel_alloc(pa);
    throw;
  }
  heap_->finish_alloc(pa);
  if (dest != nullptr && !dest_in_pool) *dest = id;
  return id;
}

void ObjectPool::free_atomic(ObjId* dest) {
  if (dest == nullptr) throw AllocError(ErrKind::InvalidFree, "free_atomic(nullptr)");
  const ObjId oid = *dest;
  if (oid.is_null()) return;
  if (oid.pool_id != pool_id()) throw AllocError(ErrKind::BadOid, "oid from another pool");

  const OpLane lane(*this);
  RedoSession session(region_, lane_header(lane.lane()).redo);
  PreparedFree pf = heap_->stage_free(session, oid.off);
  if (!pf.staged) return;
  const auto* dp = reinterpret_cast<const std::byte*>(dest);
  const bool dest_in_pool =
      dp >= region_.base() && dp < region_.base() + size();
  if (dest_in_pool) session.stage_oid(region_.offset_of(dest), kNullOid);
  session.commit();
  heap_->finish_free(pf);
  if (!dest_in_pool) *dest = kNullOid;
}

void ObjectPool::free_atomic(ObjId oid) {
  if (oid.is_null()) return;
  if (oid.pool_id != pool_id()) throw AllocError(ErrKind::BadOid, "oid from another pool");
  const OpLane lane(*this);
  RedoSession session(region_, lane_header(lane.lane()).redo);
  PreparedFree pf = heap_->stage_free(session, oid.off);
  if (!pf.staged) return;
  session.commit();
  heap_->finish_free(pf);
}

std::uint64_t ObjectPool::usable_size(ObjId oid) const {
  if (oid.pool_id != pool_id()) throw AllocError(ErrKind::BadOid, "oid from another pool");
  return heap_->usable_size(oid.off);
}

std::uint32_t ObjectPool::type_of(ObjId oid) const {
  if (oid.pool_id != pool_id()) throw AllocError(ErrKind::BadOid, "oid from another pool");
  return heap_->header_of(oid.off).type_num;
}

ObjId ObjectPool::first(std::uint32_t type_num) const {
  const std::uint64_t off = heap_->first_object(type_num);
  return off == 0 ? kNullOid : ObjId{pool_id(), off};
}

ObjId ObjectPool::next(ObjId oid, std::uint32_t type_num) const {
  if (oid.pool_id != pool_id()) throw AllocError(ErrKind::BadOid, "oid from another pool");
  const std::uint64_t off = heap_->next_object(oid.off, type_num);
  return off == 0 ? kNullOid : ObjId{pool_id(), off};
}

ObjId ObjectPool::root_raw(std::uint64_t size, std::uint32_t type_num) {
  PoolHeader& h = header();
  // root_off is published via a redo apply; reading it under root_mu_ keeps
  // the check ordered against a concurrent first-use allocation.
  const std::lock_guard<std::mutex> lock(root_mu_);
  if (h.root_off != 0) {
    if (size > h.root_size)
      throw PoolError(ErrKind::BadAlloc, "root object smaller than requested size");
    if (type_num != 0) {
      const std::uint32_t actual = heap_->type_of_synced(h.root_off);
      if (actual != type_num)
        throw PoolError(ErrKind::TypeMismatch,
                        "root object has type number " +
                            std::to_string(actual) + ", caller expected " +
                            std::to_string(type_num));
    }
    return ObjId{pool_id(), h.root_off};
  }

  const OpLane lane(*this);
  RedoSession session(region_, lane_header(lane.lane()).redo);
  PreparedAlloc pa = heap_->stage_alloc(session, size, type_num, /*zero=*/true);
  try {
    // Root oid + size publish atomically with the allocation.
    session.stage(region_.offset_of(&h.root_off), pa.data_off);
    session.stage(region_.offset_of(&h.root_size), size);
    session.commit();
  } catch (const CrashInjected&) {
    throw;  // power cut: no cleanup may happen
  } catch (...) {
    heap_->cancel_alloc(pa);
    throw;
  }
  heap_->finish_alloc(pa);
  return ObjId{pool_id(), pa.data_off};
}

Transaction* ObjectPool::current_tx() const {
  for (const auto& [pool, tx] : t_current_tx)
    if (pool == this) return tx;
  return nullptr;
}

std::uint32_t ObjectPool::current_tx_lane() const {
  const Transaction* tx = current_tx();
  return tx == nullptr ? static_cast<std::uint32_t>(kLaneCount) : tx->lane_;
}

void ObjectPool::set_current_tx(Transaction* tx) {
  if (tx == nullptr) {
    std::erase_if(t_current_tx,
                  [this](const auto& e) { return e.first == this; });
  } else {
    t_current_tx.emplace_back(this, tx);
  }
}

std::uint32_t ObjectPool::acquire_tx_lane() {
  if (const std::uint32_t* pinned = session_lane_of(this))
    return *pinned;  // the thread's LaneSession owns this lane
  return acquire_lane_raw();
}

void ObjectPool::release_tx_lane(std::uint32_t lane) {
  if (const std::uint32_t* pinned = session_lane_of(this);
      pinned != nullptr && *pinned == lane)
    return;  // stays checked out until the LaneSession ends
  release_lane_raw(lane);
}

std::uint32_t ObjectPool::acquire_lane_raw() {
  std::unique_lock<std::mutex> lock(lane_mu_);
  if (free_lanes_.empty()) {
    lane_waits_.fetch_add(1, std::memory_order_relaxed);
    lane_cv_.wait(lock, [this] { return !free_lanes_.empty(); });
  }
  const std::uint32_t lane = free_lanes_.back();
  free_lanes_.pop_back();
  return lane;
}

void ObjectPool::release_lane_raw(std::uint32_t lane) {
  {
    const std::lock_guard<std::mutex> lock(lane_mu_);
    free_lanes_.push_back(lane);
  }
  lane_cv_.notify_one();
}

ObjectPool::LaneSession::LaneSession(ObjectPool& pool) : pool_(pool) {
  if (session_lane_of(&pool) != nullptr)
    throw TxError(ErrKind::TxMisuse,
                  "LaneSession: thread already holds a session on this pool");
  lane_ = pool.acquire_lane_raw();
  t_lane_sessions.emplace_back(&pool, lane_);
}

ObjectPool::LaneSession::~LaneSession() {
  std::erase_if(t_lane_sessions, [this](const auto& e) {
    return e.first == &pool_ && e.second == lane_;
  });
  pool_.release_lane_raw(lane_);
}

ObjectPool::Quiesce::Quiesce(ObjectPool& pool) : pool_(pool) {
  // The calling thread holding a lane would deadlock the drain below.
  if (pool.current_tx() != nullptr || session_lane_of(&pool) != nullptr)
    throw TxError(ErrKind::TxMisuse,
                  "pool evolution requires the calling thread to hold no "
                  "transaction or LaneSession on the pool");
  std::unique_lock<std::mutex> lock(pool.lane_mu_);
  if (pool.free_lanes_.size() != kLaneCount)
    pool.lane_waits_.fetch_add(1, std::memory_order_relaxed);
  pool.lane_cv_.wait(lock,
                     [&] { return pool.free_lanes_.size() == kLaneCount; });
  pool.free_lanes_.clear();  // hold every lane: nothing can start
}

ObjectPool::Quiesce::~Quiesce() {
  {
    const std::lock_guard<std::mutex> lock(pool_.lane_mu_);
    for (std::uint32_t l = 0; l < kLaneCount; ++l)
      pool_.free_lanes_.push_back(l);
  }
  pool_.lane_cv_.notify_all();
}

PoolStats ObjectPool::stats() const {
  PoolStats s;
  s.heap = heap_->stats();
  s.pool_size = size();
  s.lane_count = header().lane_count;
  s.lane_waits = lane_waits_.load(std::memory_order_relaxed);
  s.layout_version = header().version;
  s.resizes = resizes_.load(std::memory_order_relaxed);
  s.recovered = recovered_;
  return s;
}

}  // namespace cxlpmem::pmemkit
