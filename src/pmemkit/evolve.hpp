// pmemkit/evolve.hpp — online pool evolution: open-time layout migration,
// live resize support, and the background compactor.
//
// All three share one crash discipline, borrowed from the checkpoint
// engine's invalidate-then-seal protocol:
//
//   1. a durable EvolutionMarker (header page, kEvolveMarkerOff) names the
//      operation BEFORE any image mutation — an image carrying a valid
//      marker is, by definition, mid-evolution and must not be trusted
//      beyond what the marker's recovery path re-establishes;
//   2. every bulk write is copy-and-verify: write, persist, read back,
//      compare fletcher64 fingerprints (a torn or dropped line surfaces as
//      CorruptImage here, not as silent data loss later);
//   3. exactly one redo-log commit *seals* the operation — the version
//      word, span-table count and header checksum flip together or not at
//      all.  Recovery replays a published-but-unapplied seal from the lane
//      logs before validating anything that the seal rewrites;
//   4. the marker is cleared only after the seal is durable.
//
// Crash anywhere: the image is either entirely the old state (marker
// present, seal unpublished -> roll back / retry) or entirely the new one
// (seal published -> roll forward, clear marker).  Never a hybrid.
//
// The compactor needs no marker at all: each relocation is an ordinary
// undo-logged transaction (alloc new / copy-verify / rewrite the caller's
// reference slot / free old), so a crash mid-compaction recovers through
// the standard lane recovery path.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

#include "pmemkit/layout.hpp"
#include "pmemkit/oid.hpp"
#include "pmemkit/pool.hpp"

namespace cxlpmem::pmemkit {

/// Header checksum covers the immutable identity fields only: `flags`
/// (clean-shutdown toggle), `root_off`/`root_size` (published atomically via
/// redo after creation) and `checksum` itself are excluded.  Shared between
/// pool open/create and the evolution seals (which must stage the successor
/// checksum in the same commit that rewrites version/pool_size).
[[nodiscard]] std::uint64_t header_checksum(const PoolHeader& h);

/// Checksum over a SpanTable / EvolutionMarker with its checksum field
/// zeroed — the self-validation rule every header-page side structure uses.
[[nodiscard]] std::uint64_t span_table_checksum(const SpanTable& t);
[[nodiscard]] std::uint64_t marker_checksum(const EvolutionMarker& m);

/// Handles an EvolutionMarker found at open, BEFORE header validation (the
/// seal it brackets may be published but unapplied, and a Resize marker
/// legitimately leaves the file a different length than the header claims).
/// Replays all lane redo logs, then rolls the operation forward or back:
///   Resize       -> file truncated/re-extended to header.pool_size, marker
///                   cleared;
///   MigrateV1V2  -> version already current: marker cleared (clear was the
///                   only step lost).  Version still 1: the marker stays for
///                   migrate_v1_pool when `migrate` is set, else
///                   PoolError(MigrationPending).
/// Returns true when it did anything (the open reports recovered()).
bool recover_evolution(ObjectPool& pool, bool migrate);

/// Upgrades a version-1 image to the current layout in place (open path,
/// PoolOptions::migrate).  Validates the v1 header, plants the marker,
/// replays and verifies every lane to Idle, writes the span table
/// copy-and-verify, then seals {version word, span-table count, header
/// checksum} in one redo commit and clears the marker.  Idempotent: rerun
/// after a crash at any point and it converges on the same v2 image.
/// Throws PoolError on a header that is not a healthy v1 pool.
void migrate_v1_pool(ObjectPool& pool, std::string_view layout);

struct CompactOptions {
  /// Stop after moving this many bytes (default: no cap).
  std::uint64_t max_moved_bytes = ~0ull;
  /// Skip source chunks whose fill ratio is at/above this (moving objects
  /// out of nearly-full chunks churns bytes without freeing chunks).
  double max_source_fill = 0.9;
};

struct CompactReport {
  std::uint64_t examined = 0;       ///< reference slots considered
  std::uint64_t moved_objects = 0;
  std::uint64_t moved_bytes = 0;    ///< usable bytes relocated
  std::uint64_t skipped = 0;        ///< same-chunk landings, dense sources, full heap
  std::uint64_t reclaimed_chunks = 0;  ///< emptied run chunks returned to Free
  double fragmentation_before = 0.0;
  double fragmentation_after = 0.0;
};

/// Defragments the heap by relocating the objects named by `refs` —
/// pmemobj_defrag's contract: each element points at the *owning reference
/// slot* (an ObjId embedded in the pool or any caller memory) whose object
/// may be moved; the slot is rewritten to the new oid inside the same
/// transaction that copies the object, so persistent typed pointers
/// (ptr<T> is exactly an ObjId) stay valid throughout.  Slots that live
/// inside other movable objects are tracked and rebased as their containers
/// move.  Sparsest source chunks are drained first, so freed chunks return
/// to the span map monotonically.  Each relocation is one ordinary
/// transaction — crash-safe via standard recovery, and safe to run
/// concurrently with mutators as long as the caller guarantees nobody else
/// touches the referenced objects or slots during the call.
CompactReport compact_pool(ObjectPool& pool, std::span<ObjId* const> refs,
                           CompactOptions options = {});

}  // namespace cxlpmem::pmemkit
