// pmemkit/pmemsan.hpp — PmemSan: the runtime persistency sanitizer.
//
// Grown out of ShadowTracker's flush/fence model: every pool cache line
// runs the state machine
//
//     Clean ──store──▶ Stored ──flush──▶ Pending ──fence──▶ Durable
//
// and transitions that violate the x86+ADR persistence discipline are
// reported — with offset, size, rule id and capture-time provenance (pool
// name + a small backtrace) — through a pluggable ViolationSink.  Enabled
// per pool via PoolOptions::pmemcheck or process-wide via
// CXLPMEM_PMEMCHECK=1.
//
// Rules:
//   R1 UnloggedStore    — store inside a transaction to pool bytes neither
//                         undo-logged (add_range) nor registered fresh
//                         (add_fresh_range) nor tx/lane metadata: the
//                         classic missing-snapshot bug
//   R2 UnflushedCommit  — a commit record published while lines the
//                         transaction covers are not yet durable (the
//                         flush or the fence before the marker was shaved)
//   R3 RedundantFlush   — flush of an already-durable line no store has
//                         re-dirtied (wasted write-back bandwidth)
//   R4 FlushNeverStored — flush of a line no store ever touched (the flush
//                         publishes nothing; usually an over-wide persist)
//   R5 DirtyAtClose     — stored-but-not-durable lines still outstanding
//                         when the pool closes (or verify() is called)
//   R6 PersistTooSmall  — a persist starting where the preceding store
//                         started but covering fewer bytes (a torn
//                         publish waiting to happen)
//
// Library-level visibility: pmemkit's own metadata stores announce
// themselves (PersistentRegion::note_store_infra), transactional user
// ranges arrive via note_store, and *unannounced* stores (raw writes
// through direct() pointers) are inferred at flush time by comparing the
// live line against the sanitizer's durable image — a line that differs
// was stored to; a line that matches was not, so flushing it publishes
// nothing (R3/R4).
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "pmemkit/layout.hpp"

namespace cxlpmem::pmemkit {

enum class SanRule : std::uint32_t {
  UnloggedStore = 1,
  UnflushedCommit = 2,
  RedundantFlush = 3,
  FlushNeverStored = 4,
  DirtyAtClose = 5,
  PersistTooSmall = 6,
};
inline constexpr std::size_t kSanRuleCount = 7;  // 1-based, index by value

[[nodiscard]] inline const char* to_string(SanRule r) noexcept {
  switch (r) {
    case SanRule::UnloggedStore: return "unlogged-store";
    case SanRule::UnflushedCommit: return "unflushed-commit";
    case SanRule::RedundantFlush: return "redundant-flush";
    case SanRule::FlushNeverStored: return "flush-never-stored";
    case SanRule::DirtyAtClose: return "dirty-at-close";
    case SanRule::PersistTooSmall: return "persist-too-small";
  }
  return "?";
}

struct SanViolation {
  SanRule rule;
  std::uint64_t off = 0;   ///< pool offset of the offending range/line
  std::uint64_t len = 0;   ///< bytes implicated
  std::string pool;        ///< pool name (file name) at capture time
  std::string message;     ///< rule-specific diagnosis
  std::string backtrace;   ///< small call stack captured at detection

  /// One-line report: "pmemsan[pool] R3 redundant-flush off=... len=...: msg".
  [[nodiscard]] std::string format() const;
};

/// Where violations go.  Sinks may be shared across pools and threads; the
/// sanitizer serializes detection, not reporting — implementations that
/// keep state must lock.
class ViolationSink {
 public:
  virtual ~ViolationSink() = default;
  virtual void report(const SanViolation& v) = 0;
};

/// Throws PoolError(ErrKind::PersistencyViolation).  The default: a
/// violation fails the operation (and the test) on the spot.
class ThrowSink final : public ViolationSink {
 public:
  void report(const SanViolation& v) override;
};

/// Writes the formatted report (including the backtrace) to stderr and
/// keeps going — the production triage mode.
class LogSink final : public ViolationSink {
 public:
  void report(const SanViolation& v) override;
};

/// Counts per rule and keeps the first few violations for inspection —
/// what the seeded-violation suite and micro_tx's zero-violation
/// assertions use.
class CountSink final : public ViolationSink {
 public:
  void report(const SanViolation& v) override;

  [[nodiscard]] std::uint64_t total() const;
  [[nodiscard]] std::uint64_t count(SanRule r) const;
  /// The retained violations (first kKeep), in detection order.
  [[nodiscard]] std::vector<SanViolation> violations() const;

 private:
  static constexpr std::size_t kKeep = 64;
  mutable std::mutex mu_;
  std::array<std::uint64_t, kSanRuleCount> counts_{};
  std::uint64_t total_ = 0;
  std::vector<SanViolation> kept_;
};

class PmemSan {
 public:
  /// Who performed a store.  Infra = pmemkit's own metadata machinery
  /// (lane headers, logs, heap bookkeeping) — exempt from R1.  User =
  /// transactional user data (note_store), subject to R1 coverage checks.
  enum class StoreOrigin { Infra, User };

  /// Tracks a live region of `size` bytes; `live` must outlive the
  /// sanitizer.  The durable image starts as a copy of the live one (a
  /// fresh pool's zeroes are durable; an opened pool's file content is).
  /// The initial sink honors CXLPMEM_PMEMCHECK_SINK=throw|log|count
  /// (default throw).
  PmemSan(const std::byte* live, std::size_t size, std::string pool_name);
  ~PmemSan();
  PmemSan(const PmemSan&) = delete;
  PmemSan& operator=(const PmemSan&) = delete;

  /// Pool bytes below this offset are metadata (header page + lane
  /// region): infrastructure the transaction protocol itself mutates, so
  /// user-origin stores there are never R1 candidates.
  void set_meta_bound(std::uint64_t bound) noexcept { meta_bound_ = bound; }
  void set_pool_name(std::string name);
  /// Replaces the sink.  shared_ptr so a test can keep its CountSink
  /// readable after the pool (and the sanitizer) is gone.
  void set_sink(std::shared_ptr<ViolationSink> sink);

  // --- event feed (PersistentRegion forwards these) ------------------------
  void on_store(std::uint64_t off, std::uint64_t len, StoreOrigin origin);
  void on_flush(std::uint64_t off, std::uint64_t len);
  void on_fence();
  /// persist() entry point, before its flush: checks R6 against the
  /// calling thread's preceding store.
  void on_persist(std::uint64_t off, std::uint64_t len);
  /// Follows a region resize (grow/shrink); mirrors ShadowTracker::remap.
  void remap(const std::byte* live, std::size_t size);
  /// Accepts the live bytes of [off, off+len) as the durable baseline
  /// without requiring a flush.  For staged-then-abandoned scratch — an
  /// uncommitted redo session's cells — that is *designed* never to become
  /// durable; without this, the leftover raw stores would read as R5 dirt
  /// at close.  Byte-precise: neighbouring bytes on shared cache lines keep
  /// their tracking.
  void discard(std::uint64_t off, std::uint64_t len);

  // --- transaction hooks ---------------------------------------------------
  void tx_begin(std::uint32_t lane);
  /// add_range / add_fresh_range coverage for the lane's open transaction.
  void tx_cover(std::uint32_t lane, std::uint64_t off, std::uint64_t len);
  /// Called immediately before the commit record is made durable: every
  /// line the transaction covers must already be durable (R2).
  void tx_commit_publish(std::uint32_t lane);
  void tx_end(std::uint32_t lane);
  /// The abort-path twin of tx_end: the rollback has just undone the
  /// transaction, so covered lines that never reached durability (fresh
  /// allocations, mid-tx stores) describe dead bytes — accept them as-is
  /// instead of letting them read as lost updates at close.
  void tx_abort(std::uint32_t lane);

  // --- checks --------------------------------------------------------------
  /// Asserts everything stored so far is durable: any line still Stored or
  /// Pending — or whose live bytes differ from the durable image without
  /// any store on record (a raw store nobody flushed) — is R5.  Reports at
  /// most `max_reports` violations; returns how many lines were dirty.
  std::size_t verify(std::size_t max_reports = 16);
  /// The destructor-time variant of verify(); same checks, close-specific
  /// messages.
  std::size_t close_check(std::size_t max_reports = 16);

  // --- counters (maintained regardless of sink) ----------------------------
  [[nodiscard]] std::uint64_t total_violations() const noexcept {
    return total_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t violations(SanRule r) const noexcept {
    return rule_counts_[static_cast<std::size_t>(r)].load(
        std::memory_order_relaxed);
  }

 private:
  enum class Line : std::uint8_t { Stored, Pending, Durable };

  struct TxCtx {
    bool active = false;
    /// Covered ranges, merged: start -> end (mirrors Transaction's set).
    std::map<std::uint64_t, std::uint64_t> coverage;
  };

  /// True when the live line `l` matches the durable image byte-for-byte.
  [[nodiscard]] bool line_matches_durable(std::uint64_t l) const;
  [[nodiscard]] bool covered(const TxCtx& ctx, std::uint64_t off,
                             std::uint64_t end) const;
  SanViolation make_violation(SanRule rule, std::uint64_t off,
                              std::uint64_t len, std::string message) const;
  void deliver(std::vector<SanViolation> found);
  std::size_t scan_not_durable(std::size_t max_reports, const char* when);

  mutable std::mutex mu_;
  const std::byte* live_;
  std::vector<std::byte> durable_;  ///< what the media durably holds
  std::string pool_name_;
  std::uint64_t meta_bound_ = 0;
  std::shared_ptr<ViolationSink> sink_;

  /// Line index -> state; absent = Clean (never stored, matches durable_).
  std::unordered_map<std::uint64_t, Line> lines_;
  /// Lines flushed since the last fence (subset of lines_ in Pending).
  std::unordered_set<std::uint64_t> pending_;
  std::array<TxCtx, kLaneCount> tx_;  ///< per-lane open-transaction context

  std::atomic<std::uint64_t> total_{0};
  std::array<std::atomic<std::uint64_t>, kSanRuleCount> rule_counts_{};
};

}  // namespace cxlpmem::pmemkit
