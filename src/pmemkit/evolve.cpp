// pmemkit/evolve.cpp — v1→v2 migration, resize protocol, compactor.
//
// See evolve.hpp for the invalidate-then-seal discipline all of this
// follows.  Crash points (crash_hook.hpp) bracket every durable step so the
// crash suites can sweep mid-migration, mid-resize and mid-compaction.

#include "pmemkit/evolve.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "pmemkit/checksum.hpp"
#include "pmemkit/crash_hook.hpp"
#include "pmemkit/errors.hpp"
#include "pmemkit/redo.hpp"
#include "pmemkit/tx.hpp"

namespace cxlpmem::pmemkit {

namespace {

EvolutionMarker* marker_at(PersistentRegion& region) noexcept {
  return reinterpret_cast<EvolutionMarker*>(region.base() + kEvolveMarkerOff);
}

SpanTable* span_table_at(PersistentRegion& region) noexcept {
  return reinterpret_cast<SpanTable*>(region.base() + kSpanTableOff);
}

void plant_marker(PersistentRegion& region, EvolveOp op,
                  std::uint32_t from_version, std::uint32_t to_version,
                  std::uint64_t target_size) {
  EvolutionMarker m{};
  m.magic = kEvolveMagic;
  m.op = static_cast<std::uint32_t>(op);
  m.from_version = from_version;
  m.to_version = to_version;
  m.target_size = target_size;
  m.checksum = marker_checksum(m);
  region.memcpy_persist(marker_at(region), &m, sizeof(m));
}

void clear_marker(PersistentRegion& region) {
  const EvolutionMarker zero{};
  region.memcpy_persist(marker_at(region), &zero, sizeof(zero));
}

/// Copy-and-verify: write, persist, read back, compare fingerprints.  A
/// torn or dropped line surfaces here instead of as silent loss later.
void copy_verified(PersistentRegion& region, std::uint64_t off,
                   const void* src, std::size_t len) {
  region.memcpy_persist(region.base() + off, src, len);
  if (fletcher64(region.base() + off, len) != fletcher64(src, len))
    throw PoolError(ErrKind::CorruptImage,
                    "copy-and-verify mismatch at pool offset " +
                        std::to_string(off));
}

/// A lane's redo log at its fixed offset — usable before the pool's header
/// has been validated (lane geometry is identical in every layout version).
RedoLog& lane_redo_at(PersistentRegion& region, std::uint32_t lane) noexcept {
  return *reinterpret_cast<RedoLog*>(region.base() + kHeaderSize +
                                     std::uint64_t{lane} * kLaneSize +
                                     offsetof(LaneHeader, redo));
}

}  // namespace

std::uint64_t span_table_checksum(const SpanTable& t) {
  SpanTable probe = t;
  probe.checksum = 0;
  return fletcher64(&probe, sizeof(probe));
}

std::uint64_t marker_checksum(const EvolutionMarker& m) {
  EvolutionMarker probe = m;
  probe.checksum = 0;
  return fletcher64(&probe, sizeof(probe));
}

bool recover_evolution(ObjectPool& pool, bool migrate) {
  PersistentRegion& region = pool.region();
  if (region.size() < kHeaderSize) return false;  // header checks will reject
  const EvolutionMarker& m = *marker_at(region);
  if (m.magic != kEvolveMagic) return false;
  if (m.checksum != marker_checksum(m)) {
    // Torn marker write: the crash hit before the marker was durable, so
    // the operation is guaranteed not to have touched the image yet.
    clear_marker(region);
    return true;
  }

  // The sealing redo commit may be published but not applied; replay every
  // lane log before trusting anything the seal rewrites (version word,
  // pool_size, span-table count, header checksum).
  if (region.size() < kHeaderSize + kLaneCount * kLaneSize)
    throw PoolError(ErrKind::CorruptImage,
                    "evolution marker present but lane region is truncated");
  for (std::uint32_t l = 0; l < kLaneCount; ++l)
    redo_recover(region, lane_redo_at(region, l));

  const auto& h = *reinterpret_cast<const PoolHeader*>(region.base());
  switch (static_cast<EvolveOp>(m.op)) {
    case EvolveOp::Resize:
      // Roll to whatever the header says: pre-seal crash => the header kept
      // the old size (rolls a grow's ftruncate back / leaves a shrink's
      // file alone); post-seal crash => the header carries the new size
      // (completes a shrink's pending truncation).
      if (h.pool_size != region.size()) region.resize(h.pool_size);
      clear_marker(region);
      return true;
    case EvolveOp::MigrateV1V2:
      if (h.version == kPoolVersion) {
        // Seal landed; only the marker clear was lost.
        clear_marker(region);
        return true;
      }
      if (!migrate)
        throw PoolError(ErrKind::MigrationPending,
                        "interrupted v1->v2 migration; reopen with "
                        "PoolOptions::migrate to finish it");
      return true;  // migrate_v1_pool reruns under the existing marker
    default:
      throw PoolError(ErrKind::CorruptImage,
                      "evolution marker names an unknown operation");
  }
}

void migrate_v1_pool(ObjectPool& pool, std::string_view layout) {
  PersistentRegion& region = pool.region();
  PoolHeader& h = pool.header();

  // A migration only starts from a *healthy* v1 image — the usual open
  // checks, against the v1 version number.
  if (h.version != kPoolVersionV1)
    throw PoolError(ErrKind::VersionMismatch,
                    "migrator requires a version-1 pool");
  if (h.checksum != header_checksum(h))
    throw PoolError(ErrKind::ChecksumMismatch,
                    "pool header checksum mismatch");
  if (h.pool_size != pool.size())
    throw PoolError(ErrKind::SizeMismatch, "pool size mismatch");
  if (std::string_view(h.layout.data()) != layout)
    throw PoolError(ErrKind::LayoutMismatch,
                    "layout mismatch: pool has '" +
                        std::string(h.layout.data()) + "', caller wants '" +
                        std::string(layout) + "'");
  crash_point("evolve:validated");

  // 1. Invalidate: the durable marker precedes every mutation.  Idempotent
  // on rerun — an interrupted attempt left the identical marker behind.
  plant_marker(region, EvolveOp::MigrateV1V2, kPoolVersionV1, kPoolVersion,
               h.pool_size);
  crash_point("evolve:marker");

  // 2. Drain every lane to Idle.  v1 logs are protocol-agnostic to
  // recovery, so this retires any transaction the v1 writer left mid-air;
  // afterwards no lane state needs translating.
  pool.heap_ = std::make_unique<Heap>(region, h.heap_off, h.heap_size);
  pool.heap_->rebuild();
  for (std::uint32_t l = 0; l < kLaneCount; ++l) recover_lane(pool, l);
  crash_point("evolve:quiesced");

  // 3. Copy-and-verify the span-table entries.  count stays 0 on media —
  // the image remains a valid v1 pool — until the seal flips it together
  // with the version word.
  SpanTable next{};
  next.count = 1;
  next.spans[0] = HeapSpan{h.heap_off, h.heap_size};
  next.checksum = span_table_checksum(next);
  copy_verified(region, kSpanTableOff + offsetof(SpanTable, spans),
                next.spans.data(), sizeof(next.spans));
  crash_point("evolve:spantable");

  // 4. Verify every region the new layout will trust: lanes Idle with no
  // published redo (the heap was validated chunk-by-chunk in rebuild()).
  for (std::uint32_t l = 0; l < kLaneCount; ++l) {
    const LaneHeader& lane = pool.lane_header(l);
    if (static_cast<LaneState>(lane.state) != LaneState::Idle ||
        lane.redo.valid != 0)
      throw PoolError(ErrKind::CorruptImage,
                      "lane " + std::to_string(l) +
                          " failed to drain during migration");
  }
  crash_point("evolve:verified");

  // 5. Seal: one redo commit flips the version word (version and flags
  // share one 8-byte cell), publishes the span-table count + checksum, and
  // installs the successor header checksum.  All or nothing.
  PoolHeader probe = h;
  probe.version = kPoolVersion;
  const std::uint64_t version_word =
      std::uint64_t{kPoolVersion} | (std::uint64_t{h.flags} << 32);
  RedoSession seal(region, pool.lane_header(0).redo);
  seal.stage(offsetof(PoolHeader, version), version_word);
  seal.stage(offsetof(PoolHeader, checksum), header_checksum(probe));
  seal.stage(kSpanTableOff + offsetof(SpanTable, count), next.count);
  seal.stage(kSpanTableOff + offsetof(SpanTable, checksum), next.checksum);
  crash_point("evolve:pre-seal");
  seal.commit();
  crash_point("evolve:sealed");

  // 6. The image is wholly v2; retire the marker.
  clear_marker(region);
  crash_point("evolve:cleared");

  pool.heap_.reset();  // the open path rebuilds through the span table
  pool.recovered_ = true;
}

void ObjectPool::resize(std::uint64_t new_size) {
  if (new_size < min_pool_size())
    throw PoolError(ErrKind::PoolTooSmall,
                    "resize below minimum pool size (" +
                        std::to_string(min_pool_size()) + " bytes)");
  const Quiesce quiesce(*this);
  PoolHeader& h = header();
  const std::uint64_t old_size = size();
  if (new_size == old_size) return;

  if (new_size > old_size) {
    // --- grow: marker -> extend file -> format span -> seal -> clear ----
    if (heap_->span_count() >= kMaxHeapSpans)
      throw PoolError(ErrKind::OutOfSpace,
                      "pool already holds the maximum number of heap spans");

    // Current table (or the implicit single span) + the new entry.
    SpanTable next = *span_table_at(region_);
    if (next.count == 0) {
      next = SpanTable{};
      next.count = 1;
      next.spans[0] = HeapSpan{h.heap_off, h.heap_size};
    }
    next.spans[next.count] = HeapSpan{old_size, new_size - old_size};
    next.count += 1;
    next.checksum = span_table_checksum(next);

    plant_marker(region_, EvolveOp::Resize, h.version, h.version, new_size);
    crash_point("resize:marker");

    // Extend file + mapping.  The base may move: every cached direct
    // pointer re-resolves through the bumped registry generation.  A failed
    // ftruncate/mremap (quota, RLIMIT_FSIZE, address space) leaves the
    // image untouched — retire the marker so the media does not keep
    // claiming an in-flight resize, then surface the typed error.
    try {
      region_.resize(new_size);
    } catch (...) {
      clear_marker(region_);
      throw;
    }
    detail::bump_pool_generation();
    crash_point("resize:mapped");

    // Format and publish the span: allocations may land in it from here on
    // (this process); durability of the *membership* comes with the seal.
    heap_->extend_span(old_size, new_size - old_size);
    crash_point("resize:formatted");

    // Entries first (inert while count is still old), then the seal flips
    // count, table checksum, pool_size and header checksum atomically.
    copy_verified(region_, kSpanTableOff + offsetof(SpanTable, spans),
                  next.spans.data(), sizeof(next.spans));
    // Re-resolve the header: the remap above may have moved the base, and
    // `h` was bound to the old mapping.
    PoolHeader probe = header();
    probe.pool_size = new_size;
    RedoSession seal(region_, lane_header(0).redo);
    seal.stage(offsetof(PoolHeader, pool_size), new_size);
    seal.stage(offsetof(PoolHeader, checksum), header_checksum(probe));
    seal.stage(kSpanTableOff + offsetof(SpanTable, count), next.count);
    seal.stage(kSpanTableOff + offsetof(SpanTable, checksum), next.checksum);
    crash_point("resize:pre-seal");
    seal.commit();
    crash_point("resize:sealed");

    clear_marker(region_);
    crash_point("resize:cleared");
  } else {
    // --- shrink: whole trailing spans only, and only when empty ---------
    // Runs the compactor may have drained still sit reserved for their
    // class; return them first so a compact-then-shrink sequence works.
    heap_->reclaim_empty_runs();
    const std::uint32_t spans = heap_->span_count();
    std::uint32_t keep = spans;
    while (keep > 1 && heap_->span_extent(keep - 1).off >= new_size) --keep;
    if (keep == spans) return;  // rounds up to the span boundary: a no-op

    // Refuse BEFORE anything durable happens when the doomed tail is
    // occupied (live objects, or run chunks still reserved for a class).
    for (std::uint32_t i = keep; i < spans; ++i)
      if (!heap_->span_retractable(i))
        throw PoolError(
            ErrKind::ShrinkBlocked,
            "live objects occupy the heap span at offset " +
                std::to_string(heap_->span_extent(i).off) +
                " that shrinking to " + std::to_string(new_size) +
                " bytes would drop");
    const std::uint64_t final_size = heap_->span_extent(keep).off;

    SpanTable next = *span_table_at(region_);
    next.count = keep;  // stale tail entries stay; count gates them
    next.checksum = span_table_checksum(next);

    plant_marker(region_, EvolveOp::Resize, h.version, h.version, final_size);
    crash_point("resize:marker");

    // Seal first: once pool_size says "short", recovery finishes the
    // truncation; until then the image stays fully the old state.
    PoolHeader probe = h;
    probe.pool_size = final_size;
    RedoSession seal(region_, lane_header(0).redo);
    seal.stage(offsetof(PoolHeader, pool_size), final_size);
    seal.stage(offsetof(PoolHeader, checksum), header_checksum(probe));
    seal.stage(kSpanTableOff + offsetof(SpanTable, count), next.count);
    seal.stage(kSpanTableOff + offsetof(SpanTable, checksum), next.checksum);
    crash_point("resize:pre-seal");
    seal.commit();
    crash_point("resize:sealed");

    // Unpublish the doomed spans while their memory is still mapped, then
    // drop the file tail.
    for (std::uint32_t i = spans; i-- > keep;) heap_->retract_span();
    region_.resize(final_size);
    detail::bump_pool_generation();
    crash_point("resize:mapped");

    clear_marker(region_);
    crash_point("resize:cleared");
  }
  resizes_.fetch_add(1, std::memory_order_relaxed);
}

namespace {
/// Thrown (and caught) inside a relocation transaction whose fresh block
/// landed back in the source chunk: aborting the tx undoes the allocation,
/// and the object simply stays put.
struct SameChunkLanding {};
}  // namespace

CompactReport compact_pool(ObjectPool& pool, std::span<ObjId* const> refs,
                           CompactOptions options) {
  Heap& heap = pool.heap();
  CompactReport report;
  report.fragmentation_before = heap.stats().fragmentation;

  // Admit movable slots and key them by source-chunk fill so the sparsest
  // chunks drain first — each drained chunk goes back to the span map
  // whole, which is what makes the pass converge instead of churn.
  struct Item {
    ObjId* slot;
    std::uint64_t fill;
  };
  std::vector<Item> items;
  items.reserve(refs.size());
  for (ObjId* slot : refs) {
    if (slot == nullptr) continue;
    ++report.examined;
    const ObjId oid = *slot;
    if (oid.is_null() || oid.pool_id != pool.pool_id()) {
      ++report.skipped;
      continue;
    }
    const std::uint64_t fill = heap.chunk_fill_of(oid.off);
    if (fill == 0 ||
        static_cast<double>(fill) / static_cast<double>(kChunkSize) >=
            options.max_source_fill) {
      ++report.skipped;
      continue;
    }
    items.push_back(Item{slot, fill});
  }
  std::stable_sort(items.begin(), items.end(),
                   [](const Item& a, const Item& b) { return a.fill < b.fill; });

  for (std::size_t i = 0; i < items.size(); ++i) {
    if (report.moved_bytes >= options.max_moved_bytes) {
      report.skipped += items.size() - i;
      break;
    }
    ObjId* const slot = items[i].slot;
    const ObjId oid = *slot;
    const auto* sp = reinterpret_cast<const std::byte*>(slot);
    const bool slot_in_pool = sp >= pool.region().base() &&
                              sp < pool.region().base() + pool.size();
    ObjId nid = kNullOid;
    std::byte* dst = nullptr;
    const std::byte* src = nullptr;
    std::uint64_t moved = 0;
    try {
      pool.run_tx([&] {
        const std::uint64_t bytes = pool.usable_size(oid);
        const std::uint32_t type = pool.type_of(oid);
        nid = pool.tx_alloc(bytes, type);
        if (heap.chunk_index_of(nid.off) == heap.chunk_index_of(oid.off))
          throw SameChunkLanding{};
        dst = static_cast<std::byte*>(pool.direct(nid));
        src = static_cast<const std::byte*>(pool.direct(oid));
        // tx_alloc registered the whole block as a fresh range, which is
        // also the store annotation; commit flushes every covered range
        // exactly once, so persisting here would write the lines back
        // twice (PmemSan flags it as R3).
        std::memcpy(dst, src, bytes);  // pmemlint: allow(fresh range registered by tx_alloc; flushed at commit)
        if (fletcher64(dst, bytes) != fletcher64(src, bytes))
          throw PoolError(ErrKind::CorruptImage,
                          "compaction copy-and-verify mismatch");
        // Rewriting the owning slot IS the pointer fix-up: ptr<T> carries
        // nothing but this ObjId.  In-pool slots are snapshotted so a
        // crash replays either the whole move or none of it.
        if (slot_in_pool) {
          pool.tx_add_range(slot, sizeof(ObjId));
          *slot = nid;
        }
        pool.tx_free(oid);
        moved = bytes;
      });
      if (!slot_in_pool) *slot = nid;  // volatile slot: caller-owned memory
      // Slots living inside the object that just moved now live at the
      // relocated address; rebase the not-yet-processed ones.
      for (std::size_t j = i + 1; j < items.size(); ++j) {
        const auto* q = reinterpret_cast<const std::byte*>(items[j].slot);
        if (q >= src && q < src + moved)
          items[j].slot = reinterpret_cast<ObjId*>(dst + (q - src));
      }
      ++report.moved_objects;
      report.moved_bytes += moved;
    } catch (const SameChunkLanding&) {
      ++report.skipped;  // tx aborted: the allocation was undone
    } catch (const AllocError&) {
      ++report.skipped;  // no room to relocate this one (e.g. heap full)
    }
  }

  // Emptied runs go back to the span map — this, not the moves themselves,
  // is what lowers reserved_bytes and with it the fragmentation ratio.
  report.reclaimed_chunks = heap.reclaim_empty_runs();

  report.fragmentation_after = heap.stats().fragmentation;
  return report;
}

}  // namespace cxlpmem::pmemkit
