// pmemkit/pmem_ops.hpp — PersistentRegion: the persistence-domain interface
// every pmemkit component writes through.
//
// It wraps the mapped pool image and (optionally) a ShadowTracker.  The
// primitive vocabulary mirrors libpmem:
//   flush(p, n)   ~ CLWB loop        — schedule lines for write-back
//   drain()       ~ SFENCE           — make scheduled lines durable
//   persist(p, n) ~ flush + drain
//   memcpy_persist(dst, src, n)      — store + persist
// With no shadow attached these are no-ops beyond the store itself (the
// mapped file *is* the media); with a shadow they maintain the crash image.
#pragma once

#include <cstddef>
#include <cstring>
#include <memory>

#include "pmemkit/mapped_file.hpp"
#include "pmemkit/pmemsan.hpp"
#include "pmemkit/shadow.hpp"

namespace cxlpmem::pmemkit {

class PersistentRegion {
 public:
  /// Takes ownership of the mapping.  `track_shadow` enables the crash
  /// checker (slower; meant for tests and the crash harness); `pmemcheck`
  /// attaches the PmemSan persistency sanitizer, which diagnoses
  /// flush/fence discipline violations as they happen (see pmemsan.hpp for
  /// the rule catalog).  The two are independent.
  explicit PersistentRegion(MappedFile file, bool track_shadow = false,
                            bool pmemcheck = false)
      : file_(std::move(file)) {
    if (track_shadow)
      shadow_ = std::make_unique<ShadowTracker>(file_.data(), file_.size());
    if (pmemcheck)
      san_ = std::make_unique<PmemSan>(file_.data(), file_.size(),
                                       file_.path().filename().string());
  }

  [[nodiscard]] std::byte* base() noexcept { return file_.data(); }
  [[nodiscard]] const std::byte* base() const noexcept { return file_.data(); }
  [[nodiscard]] std::size_t size() const noexcept { return file_.size(); }
  [[nodiscard]] MappedFile& file() noexcept { return file_; }

  [[nodiscard]] std::size_t offset_of(const void* p) const {
    return static_cast<std::size_t>(static_cast<const std::byte*>(p) -
                                    base());
  }

  void flush(const void* p, std::size_t n) {
    if (shadow_) shadow_->record_flush(offset_of(p), n);
    if (san_) san_->on_flush(offset_of(p), n);
  }
  void drain() {
    ++t_drain_count;
    if (shadow_) shadow_->record_fence();
    if (san_) san_->on_fence();
  }

  /// Fences (drain calls) issued by the calling thread, across all regions,
  /// since thread start.  Thread-local so the count costs nothing to
  /// maintain and nothing to read; benchmarks and tests diff it around an
  /// operation to assert its fence budget (e.g. "one fenced persist per
  /// published snapshot").
  [[nodiscard]] static std::uint64_t thread_drain_count() noexcept {
    return t_drain_count;
  }
  void persist(const void* p, std::size_t n) {
    if (san_) san_->on_persist(offset_of(p), n);
    flush(p, n);
    drain();
  }
  /// Marks a range as modified-without-flush (transaction user ranges).
  void note_store(const void* p, std::size_t n) {
    if (shadow_) shadow_->record_store(offset_of(p), n);
    if (san_) san_->on_store(offset_of(p), n, PmemSan::StoreOrigin::User);
  }
  /// The infrastructure twin of note_store: pmemkit's own metadata writes
  /// (lane headers, log entries, heap bookkeeping) announce themselves so
  /// the sanitizer can tell a deliberate store from a stray flush.  Exempt
  /// from the R1 coverage check; no-op when pmemcheck is off.
  void note_store_infra(const void* p, std::size_t n) {
    if (san_) san_->on_store(offset_of(p), n, PmemSan::StoreOrigin::Infra);
  }

  void memcpy_persist(void* dst, const void* src, std::size_t n) {
    std::memcpy(dst, src, n);  // pmemlint: allow(the canonical pmem store seam)
    note_store_infra(dst, n);
    persist(dst, n);
  }
  void memset_persist(void* dst, int value, std::size_t n) {
    std::memset(dst, value, n);  // pmemlint: allow(the canonical pmem store seam)
    note_store_infra(dst, n);
    persist(dst, n);
  }

  [[nodiscard]] ShadowTracker* shadow() noexcept { return shadow_.get(); }
  [[nodiscard]] PmemSan* pmemsan() noexcept { return san_.get(); }

  /// Resizes the backing file/mapping (MappedFile::resize semantics: throws
  /// PoolError(Io) and stays intact on failure; the base may move) and
  /// keeps the shadow image in step.
  void resize(std::size_t new_size) {
    file_.resize(new_size);
    if (shadow_) shadow_->remap(file_.data(), file_.size());
    if (san_) san_->remap(file_.data(), file_.size());
  }

 private:
  static inline thread_local std::uint64_t t_drain_count = 0;

  MappedFile file_;
  std::unique_ptr<ShadowTracker> shadow_;
  std::unique_ptr<PmemSan> san_;
};

}  // namespace cxlpmem::pmemkit
