// pmemkit/heap.hpp — the persistent allocator.
//
// Design (a simplified pmemobj heap):
//   * the heap region starts with a ChunkDesc table, followed by 256 KiB
//     chunks;
//   * small allocations (<= 128 KiB+header) live in Runs: a chunk carved
//     into equal blocks of one size class, with an in-chunk bitmap;
//   * larger allocations take a contiguous span of chunks (Huge);
//   * every persistent-metadata mutation (bitmap bits, chunk states, the
//     caller's destination ObjId) is staged on a caller-supplied RedoSession
//     and becomes durable atomically at session commit;
//   * transient state (free-block hints) is rebuilt on open by scanning.
//
// The split into stage_*/finish_* lets the pool compose an allocation with
// other writes (e.g. publishing the root oid) in one atomic step.
//
// Concurrency: the heap is internally sharded so lanes allocate in
// parallel.  Redo cells store absolute 64-bit values, so two in-flight
// operations must never stage the same word — the unit of exclusion is the
// chunk.  Every stage_* call acquires the target chunk's mutex and hands it
// back inside the Prepared* guard; the caller keeps it across its redo
// commit and releases it via finish_*/cancel_*.  Around that core:
//   * per-size-class mutexes guard the partial-run hint lists; busy runs
//     are skipped (try-lock), so same-class allocations from different
//     lanes spread across runs instead of queueing;
//   * one span mutex guards the transient free-chunk map; fresh chunks are
//     claimed there eagerly at stage time so concurrent span searches never
//     overlap, and cancel_* returns the claim;
//   * lock order is chunk -> (class | span); class- and span-holders only
//     ever try-lock chunks, so the order cannot cycle.
// Recovery and rebuild still run single-threaded on the open path.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "pmemkit/layout.hpp"
#include "pmemkit/pmem_ops.hpp"
#include "pmemkit/redo.hpp"

namespace cxlpmem::pmemkit {

/// Result of stage_alloc: where the object will live once the session
/// commits.  Holds the target chunk's lock from stage to finish/cancel —
/// move-only, and must be resolved by exactly one of finish_alloc() /
/// cancel_alloc() before the owning session's lane does anything else.
struct PreparedAlloc {
  std::uint64_t data_off = 0;
  std::uint64_t total_size = 0;  ///< block/span bytes incl. header
  std::uint32_t chunk = 0;       ///< head chunk of the block/span
  std::uint32_t claimed_span = 0;  ///< fresh chunks claimed transiently
  std::unique_lock<std::mutex> owner;  ///< chunk exclusivity, stage->finish
};

/// Result of stage_free: the staged release plus the chunk lock.  A
/// default-constructed (staged == false) value means the object was already
/// dead and nothing was staged.
struct PreparedFree {
  std::uint64_t data_off = 0;
  std::uint32_t chunk = 0;
  bool staged = false;
  std::unique_lock<std::mutex> owner;
};

struct HeapStats {
  std::uint64_t total_bytes = 0;      ///< heap data capacity
  std::uint64_t allocated_bytes = 0;  ///< sum of live block/span bytes
  std::uint64_t object_count = 0;
  std::uint64_t chunk_count = 0;
  std::uint64_t free_chunks = 0;
  // Contention counters (transient, since open).
  std::uint64_t alloc_ops = 0;       ///< stage_alloc calls
  std::uint64_t free_ops = 0;        ///< stage_free calls that staged
  std::uint64_t run_lock_skips = 0;  ///< partial runs skipped because busy
  std::uint64_t run_lock_waits = 0;  ///< blocking waits on a busy run
};

class Heap {
 public:
  /// Binds to the heap region [heap_off, heap_off+heap_size) of `region`.
  Heap(PersistentRegion& region, std::uint64_t heap_off,
       std::uint64_t heap_size);

  /// Formats a fresh heap (create path): all chunks Free.
  void format();

  /// Rebuilds transient state from persistent chunk metadata (open path).
  /// Validates invariants; throws PoolError on corruption.
  void rebuild();

  /// Stages an allocation of `usable` bytes with the given type number.
  /// Writes the AllocHeader immediately (inert until the staged bitmap /
  /// chunk-state cells commit).  When `zero` is set the data area is
  /// cleared and persisted before publication.  The returned guard owns the
  /// target chunk until finish_alloc()/cancel_alloc().
  PreparedAlloc stage_alloc(RedoSession& redo, std::uint64_t usable,
                            std::uint32_t type_num, bool zero);

  /// Transient bookkeeping after the session committed; releases the chunk.
  void finish_alloc(PreparedAlloc& a);

  /// Abandons a staged allocation whose session never committed (e.g. the
  /// transaction's undo-log append overflowed): returns transiently claimed
  /// chunks and releases the chunk lock.  The persistent image is untouched
  /// because the staged cells were never published.
  void cancel_alloc(PreparedAlloc& a);

  /// Stages the release of the object at `data_off`.  Throws AllocError for
  /// invalid/double frees.  Safe to call for an object that a recovery
  /// already released when `tolerate_dead` is set (idempotent replay).
  /// Result has staged == false when the object was already dead.
  PreparedFree stage_free(RedoSession& redo, std::uint64_t data_off,
                          bool tolerate_dead = false);

  /// Transient bookkeeping after a committed free; releases the chunk.
  void finish_free(PreparedFree& f);

  /// True when `data_off` points at a live allocation.  NOT synchronized
  /// against concurrent mutation of the same chunk — callers inside a
  /// stage_* critical section (or single-threaded phases) use this.
  [[nodiscard]] bool is_live(std::uint64_t data_off) const;

  /// is_live() behind the target chunk's lock: the validation entry point
  /// while other lanes may be committing into the same chunk.  Still a
  /// point-in-time answer — the object can die the moment the lock drops.
  [[nodiscard]] bool is_live_synced(std::uint64_t data_off) const;

  /// AllocHeader of a live object.
  [[nodiscard]] const AllocHeader& header_of(std::uint64_t data_off) const;

  /// Type number of the live object at `data_off`, read behind the target
  /// chunk's lock — the validation entry point while other lanes may be
  /// committing into the same chunk (same contract as is_live_synced).
  [[nodiscard]] std::uint32_t type_of_synced(std::uint64_t data_off) const;

  /// Usable size of the live object at `data_off`.
  [[nodiscard]] std::uint64_t usable_size(std::uint64_t data_off) const {
    return header_of(data_off).size;
  }

  /// First live object of `type_num` (any type when type_num == UINT32_MAX),
  /// or 0.  Iteration order: ascending offset.
  [[nodiscard]] std::uint64_t first_object(std::uint32_t type_num) const;
  /// Next live object after `data_off` with matching type, or 0.
  [[nodiscard]] std::uint64_t next_object(std::uint64_t data_off,
                                          std::uint32_t type_num) const;

  [[nodiscard]] HeapStats stats() const;

  /// Largest single allocation this heap can ever satisfy.
  [[nodiscard]] std::uint64_t max_alloc_bytes() const noexcept;

 private:
  [[nodiscard]] ChunkDesc* chunk_table() noexcept;
  [[nodiscard]] const ChunkDesc* chunk_table() const noexcept;
  [[nodiscard]] std::byte* chunk_data(std::uint32_t chunk) noexcept;
  [[nodiscard]] const std::byte* chunk_data(std::uint32_t chunk) const
      noexcept;
  [[nodiscard]] RunHeader* run_header(std::uint32_t chunk) noexcept;
  [[nodiscard]] const RunHeader* run_header(std::uint32_t chunk) const
      noexcept;

  /// Locates the chunk holding pool offset `off`; kInvalid when outside.
  [[nodiscard]] std::uint32_t chunk_of(std::uint64_t off) const noexcept;

  /// True when the (locked) run at `chunk` still has a free block.
  [[nodiscard]] bool run_has_free_block(std::uint32_t chunk) const noexcept;

  /// Records `chunk` in class `class_idx`'s partial-run hint list (no-op if
  /// already hinted).
  void hint_partial(std::uint8_t class_idx, std::uint32_t chunk);

  /// Picks a run of `class_idx` with a free block, creating one if needed.
  /// On return `a.owner` holds the run's chunk lock and `a.chunk` /
  /// `a.claimed_span` are set.
  void acquire_run(RedoSession& redo, int class_idx, PreparedAlloc& a);

  /// Finds `span` contiguous transiently-free chunks; kNoChunk sentinel
  /// (~0u) when exhausted.  Caller must hold span_mu_.
  [[nodiscard]] std::uint32_t find_free_span(std::uint32_t span) const;

  /// Returns [chunk, chunk+span) to the transient free map.
  void unclaim_span(std::uint32_t chunk, std::uint32_t span);

  PersistentRegion* region_;
  std::uint64_t heap_off_;
  std::uint64_t heap_size_;
  std::uint32_t chunk_count_ = 0;
  std::uint64_t chunks_off_ = 0;  ///< pool offset of chunk 0

  // Transient state, sharded (see header comment for the lock order).
  std::vector<std::vector<std::uint32_t>> partial_runs_;  ///< per class
  std::array<std::mutex, kSizeClasses.size()> class_mu_;
  std::vector<bool> chunk_free_;  ///< transient mirror of Free state
  mutable std::mutex span_mu_;    ///< guards chunk_free_
  std::unique_ptr<std::mutex[]> chunk_mu_;  ///< per-chunk owner locks

  std::atomic<std::uint64_t> alloc_ops_{0};
  std::atomic<std::uint64_t> free_ops_{0};
  std::atomic<std::uint64_t> run_lock_skips_{0};
  std::atomic<std::uint64_t> run_lock_waits_{0};
};

}  // namespace cxlpmem::pmemkit
