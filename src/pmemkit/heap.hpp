// pmemkit/heap.hpp — the persistent allocator.
//
// Design (a simplified pmemobj heap):
//   * the heap is one or more *spans*; each span is a self-contained region
//     starting with a ChunkDesc table, followed by 256 KiB chunks;
//   * a pool is created with a single base span; live grow appends spans at
//     the end of the file (the span table in the header page names them),
//     shrink retracts trailing spans whose chunks are all Free;
//   * small allocations (<= 128 KiB+header) live in Runs: a chunk carved
//     into equal blocks of one size class, with an in-chunk bitmap;
//   * larger allocations take a contiguous span of chunks (Huge) — never
//     crossing a span boundary, since chunk addresses only stay contiguous
//     within one span;
//   * every persistent-metadata mutation (bitmap bits, chunk states, the
//     caller's destination ObjId) is staged on a caller-supplied RedoSession
//     and becomes durable atomically at session commit;
//   * transient state (free-block hints) is rebuilt on open by scanning.
//
// The split into stage_*/finish_* lets the pool compose an allocation with
// other writes (e.g. publishing the root oid) in one atomic step.
//
// Concurrency: the heap is internally sharded so lanes allocate in
// parallel.  Redo cells store absolute 64-bit values, so two in-flight
// operations must never stage the same word — the unit of exclusion is the
// chunk.  Every stage_* call acquires the target chunk's mutex and hands it
// back inside the Prepared* guard; the caller keeps it across its redo
// commit and releases it via finish_*/cancel_*.  Around that core:
//   * per-size-class mutexes guard the partial-run hint lists; busy runs
//     are skipped (try-lock), so same-class allocations from different
//     lanes spread across runs instead of queueing;
//   * one span mutex guards the transient free-chunk map; fresh chunks are
//     claimed there eagerly at stage time so concurrent span searches never
//     overlap, and cancel_* returns the claim;
//   * lock order is chunk -> (class | span); class- and span-holders only
//     ever try-lock chunks, so the order cannot cycle.
// Recovery and rebuild still run single-threaded on the open path.
// Span-table mutation (extend/retract) happens only on the open path or
// under a fully quiesced pool (every lane held), published through an
// acquire/release counter so concurrent readers (stats, iteration) see a
// consistent prefix.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "pmemkit/layout.hpp"
#include "pmemkit/pmem_ops.hpp"
#include "pmemkit/redo.hpp"

namespace cxlpmem::pmemkit {

/// Result of stage_alloc: where the object will live once the session
/// commits.  Holds the target chunk's lock from stage to finish/cancel —
/// move-only, and must be resolved by exactly one of finish_alloc() /
/// cancel_alloc() before the owning session's lane does anything else.
struct PreparedAlloc {
  std::uint64_t data_off = 0;
  std::uint64_t total_size = 0;  ///< block/span bytes incl. header
  std::uint32_t chunk = 0;       ///< head chunk of the block/span
  std::uint32_t claimed_span = 0;  ///< fresh chunks claimed transiently
  std::unique_lock<std::mutex> owner;  ///< chunk exclusivity, stage->finish
};

/// Result of stage_free: the staged release plus the chunk lock.  A
/// default-constructed (staged == false) value means the object was already
/// dead and nothing was staged.
struct PreparedFree {
  std::uint64_t data_off = 0;
  std::uint32_t chunk = 0;
  bool staged = false;
  std::unique_lock<std::mutex> owner;
};

struct HeapStats {
  std::uint64_t total_bytes = 0;      ///< heap data capacity
  std::uint64_t allocated_bytes = 0;  ///< sum of live block/span bytes
  std::uint64_t object_count = 0;
  std::uint64_t chunk_count = 0;
  std::uint64_t free_chunks = 0;
  std::uint64_t span_count = 0;       ///< heap spans (1 = never grown)
  // Fragmentation: how much chunk space is reserved vs actually asked for.
  std::uint64_t live_bytes = 0;      ///< sum of live object bytes incl. header
  std::uint64_t reserved_bytes = 0;  ///< non-Free chunks * kChunkSize
  double fragmentation = 0.0;        ///< 1 - live/reserved (0 when empty)
  // Contention counters (transient, since open).
  std::uint64_t alloc_ops = 0;       ///< stage_alloc calls
  std::uint64_t free_ops = 0;        ///< stage_free calls that staged
  std::uint64_t run_lock_skips = 0;  ///< partial runs skipped because busy
  std::uint64_t run_lock_waits = 0;  ///< blocking waits on a busy run
};

class Heap {
 public:
  /// Binds to the base heap span [heap_off, heap_off+heap_size) of
  /// `region`.  Further spans are added with adopt_span()/extend_span().
  Heap(PersistentRegion& region, std::uint64_t heap_off,
       std::uint64_t heap_size);

  /// Formats a fresh heap (create path): all base-span chunks Free.
  void format();

  /// Rebuilds transient state from persistent chunk metadata (open path),
  /// across every registered span.  Validates invariants; throws PoolError
  /// on corruption.
  void rebuild();

  /// Registers an already-formatted span (open path, from the pool's span
  /// table) — call before rebuild().  Throws PoolError on a span that does
  /// not fit the region or cannot hold a single chunk.
  void adopt_span(std::uint64_t off, std::uint64_t size);

  /// Formats [off, off+size) as a fresh all-Free span (persisted) and
  /// publishes it live: allocations can land in it as soon as this
  /// returns.  Returns the number of chunks added.  Grow path — the
  /// caller (pool resize) has already extended the file and persists the
  /// span-table entry as part of its sealing commit.
  std::uint32_t extend_span(std::uint64_t off, std::uint64_t size);

  /// Number of registered spans / a span's extent (index < span_count()).
  [[nodiscard]] std::uint32_t span_count() const noexcept;
  [[nodiscard]] HeapSpan span_extent(std::uint32_t idx) const noexcept;

  /// Bytes of live allocations inside span `idx` (0 = retractable).
  [[nodiscard]] std::uint64_t span_live_bytes(std::uint32_t idx) const;

  /// True when span `idx` could be retracted right now: every chunk is
  /// persistently Free and transiently unclaimed.  The shrink path's
  /// pre-flight check, sharing retract_span()'s exact criteria (note an
  /// empty Run chunk still reserved for its size class blocks retraction).
  [[nodiscard]] bool span_retractable(std::uint32_t idx) const;

  /// Unpublishes the trailing span so the pool can truncate the file.
  /// Throws PoolError(ShrinkBlocked) when any of its chunks is occupied
  /// (persistently or by an in-flight claim) and PoolError(TxMisuse) when
  /// only the base span is left.
  void retract_span();

  /// Returns fully-emptied Run chunks (bitmap all zero) to the Free state,
  /// durably, and drops their partial-run hints.  An emptied run otherwise
  /// stays reserved for its size class forever — this is what lets
  /// compaction actually lower reserved_bytes, and lets a shrink retract a
  /// span whose runs have been drained.  Safe against concurrent
  /// allocations (each chunk is judged and flipped under its own lock).
  /// Returns the number of chunks reclaimed.
  std::uint32_t reclaim_empty_runs();

  /// Stages an allocation of `usable` bytes with the given type number.
  /// Writes the AllocHeader immediately (inert until the staged bitmap /
  /// chunk-state cells commit).  When `zero` is set the data area is
  /// cleared and persisted before publication.  The returned guard owns the
  /// target chunk until finish_alloc()/cancel_alloc().
  PreparedAlloc stage_alloc(RedoSession& redo, std::uint64_t usable,
                            std::uint32_t type_num, bool zero);

  /// Transient bookkeeping after the session committed; releases the chunk.
  void finish_alloc(PreparedAlloc& a);

  /// Abandons a staged allocation whose session never committed (e.g. the
  /// transaction's undo-log append overflowed): returns transiently claimed
  /// chunks and releases the chunk lock.  The persistent image is untouched
  /// because the staged cells were never published.
  void cancel_alloc(PreparedAlloc& a);

  /// Stages the release of the object at `data_off`.  Throws AllocError for
  /// invalid/double frees.  Safe to call for an object that a recovery
  /// already released when `tolerate_dead` is set (idempotent replay).
  /// Result has staged == false when the object was already dead.
  PreparedFree stage_free(RedoSession& redo, std::uint64_t data_off,
                          bool tolerate_dead = false);

  /// Transient bookkeeping after a committed free; releases the chunk.
  void finish_free(PreparedFree& f);

  /// True when `data_off` points at a live allocation.  NOT synchronized
  /// against concurrent mutation of the same chunk — callers inside a
  /// stage_* critical section (or single-threaded phases) use this.
  [[nodiscard]] bool is_live(std::uint64_t data_off) const;

  /// is_live() behind the target chunk's lock: the validation entry point
  /// while other lanes may be committing into the same chunk.  Still a
  /// point-in-time answer — the object can die the moment the lock drops.
  [[nodiscard]] bool is_live_synced(std::uint64_t data_off) const;

  /// AllocHeader of a live object.
  [[nodiscard]] const AllocHeader& header_of(std::uint64_t data_off) const;

  /// Type number of the live object at `data_off`, read behind the target
  /// chunk's lock — the validation entry point while other lanes may be
  /// committing into the same chunk (same contract as is_live_synced).
  [[nodiscard]] std::uint32_t type_of_synced(std::uint64_t data_off) const;

  /// Usable size of the live object at `data_off`.
  [[nodiscard]] std::uint64_t usable_size(std::uint64_t data_off) const {
    return header_of(data_off).size;
  }

  /// First live object of `type_num` (any type when type_num == UINT32_MAX),
  /// or 0.  Iteration order: ascending offset.
  [[nodiscard]] std::uint64_t first_object(std::uint32_t type_num) const;
  /// Next live object after `data_off` with matching type, or 0.
  [[nodiscard]] std::uint64_t next_object(std::uint64_t data_off,
                                          std::uint32_t type_num) const;

  [[nodiscard]] HeapStats stats() const;

  /// Largest single allocation this heap can ever satisfy.
  [[nodiscard]] std::uint64_t max_alloc_bytes() const noexcept;

  /// Global index of the chunk holding the allocation at `data_off`, or
  /// UINT32_MAX when outside the heap.  Compaction uses it to group objects
  /// by source chunk and to detect a relocation that landed back in the
  /// chunk it was escaping.
  [[nodiscard]] std::uint32_t chunk_index_of(std::uint64_t data_off) const
      noexcept;

  /// Live bytes (blocks/spans in use, incl. headers' share) inside the
  /// chunk holding `data_off` — the compactor's sparseness key.  0 when the
  /// offset is outside the heap.
  [[nodiscard]] std::uint64_t chunk_fill_of(std::uint64_t data_off) const;

 private:
  /// One span's geometry: descriptor table at `off`, chunks after it.
  struct Span {
    std::uint64_t off = 0;         ///< region start (= desc table)
    std::uint64_t size = 0;        ///< region bytes
    std::uint64_t chunks_off = 0;  ///< pool offset of this span's chunk 0
    std::uint32_t first_chunk = 0;  ///< global index of its first chunk
    std::uint32_t chunk_count = 0;
  };

  /// Solves a span's chunk count/geometry; throws when it cannot hold one
  /// chunk or exceeds the mapped region.
  [[nodiscard]] Span solve_span(std::uint64_t off, std::uint64_t size) const;

  /// Appends a solved span to the transient tables (publishes last).
  void publish_span(const Span& s, bool chunks_free);

  [[nodiscard]] std::uint32_t span_index_of_chunk(
      std::uint32_t chunk) const noexcept;
  [[nodiscard]] ChunkDesc* chunk_desc(std::uint32_t chunk) noexcept;
  [[nodiscard]] const ChunkDesc* chunk_desc(std::uint32_t chunk) const
      noexcept;
  /// Pool offset of a chunk's descriptor (redo staging target).
  [[nodiscard]] std::uint64_t desc_off(std::uint32_t chunk) const noexcept;
  /// Pool offset / direct pointer of a chunk's data.
  [[nodiscard]] std::uint64_t chunk_off(std::uint32_t chunk) const noexcept;
  [[nodiscard]] std::byte* chunk_data(std::uint32_t chunk) noexcept;
  [[nodiscard]] const std::byte* chunk_data(std::uint32_t chunk) const
      noexcept;
  [[nodiscard]] RunHeader* run_header(std::uint32_t chunk) noexcept;
  [[nodiscard]] const RunHeader* run_header(std::uint32_t chunk) const
      noexcept;
  [[nodiscard]] std::mutex& chunk_mutex(std::uint32_t chunk) const noexcept;

  /// Locates the chunk holding pool offset `off`; kInvalid when outside.
  [[nodiscard]] std::uint32_t chunk_of(std::uint64_t off) const noexcept;

  /// True when the (locked) run at `chunk` still has a free block.
  [[nodiscard]] bool run_has_free_block(std::uint32_t chunk) const noexcept;

  /// Records `chunk` in class `class_idx`'s partial-run hint list (no-op if
  /// already hinted).
  void hint_partial(std::uint8_t class_idx, std::uint32_t chunk);

  /// Picks a run of `class_idx` with a free block, creating one if needed.
  /// On return `a.owner` holds the run's chunk lock and `a.chunk` /
  /// `a.claimed_span` are set.
  void acquire_run(RedoSession& redo, int class_idx, PreparedAlloc& a);

  /// Finds `span` contiguous transiently-free chunks within one heap span;
  /// kNoChunk sentinel (~0u) when exhausted.  Caller must hold span_mu_.
  [[nodiscard]] std::uint32_t find_free_span(std::uint32_t span) const;

  /// Returns [chunk, chunk+span) to the transient free map.
  void unclaim_span(std::uint32_t chunk, std::uint32_t span);

  PersistentRegion* region_;
  std::uint64_t heap_off_;
  std::uint64_t heap_size_;

  // Span table (transient mirror).  Entries never change once published;
  // span_count_ is the acquire/release publication point so readers that
  // never take a lock (iteration, chunk lookup) see fully-written entries.
  std::array<Span, kMaxHeapSpans> spans_{};
  std::atomic<std::uint32_t> span_count_{0};
  std::atomic<std::uint32_t> chunk_count_{0};
  /// Per-span mutex blocks (never freed on retract: a stats walker racing
  /// a shrink may still be parked on one).
  std::array<std::unique_ptr<std::mutex[]>, kMaxHeapSpans> chunk_mu_;

  // Transient state, sharded (see header comment for the lock order).
  std::vector<std::vector<std::uint32_t>> partial_runs_;  ///< per class
  std::array<std::mutex, kSizeClasses.size()> class_mu_;
  std::vector<bool> chunk_free_;  ///< transient mirror of Free state
  mutable std::mutex span_mu_;    ///< guards chunk_free_

  std::atomic<std::uint64_t> alloc_ops_{0};
  std::atomic<std::uint64_t> free_ops_{0};
  std::atomic<std::uint64_t> run_lock_skips_{0};
  std::atomic<std::uint64_t> run_lock_waits_{0};
};

}  // namespace cxlpmem::pmemkit
