// pmemkit/heap.hpp — the persistent allocator.
//
// Design (a simplified pmemobj heap):
//   * the heap region starts with a ChunkDesc table, followed by 256 KiB
//     chunks;
//   * small allocations (<= 128 KiB+header) live in Runs: a chunk carved
//     into equal blocks of one size class, with an in-chunk bitmap;
//   * larger allocations take a contiguous span of chunks (Huge);
//   * every persistent-metadata mutation (bitmap bits, chunk states, the
//     caller's destination ObjId) is staged on a caller-supplied RedoSession
//     and becomes durable atomically at session commit;
//   * transient state (free-block hints) is rebuilt on open by scanning.
//
// The split into stage_*/finish_* lets the pool compose an allocation with
// other writes (e.g. publishing the root oid) in one atomic step.
#pragma once

#include <cstdint>
#include <vector>

#include "pmemkit/layout.hpp"
#include "pmemkit/pmem_ops.hpp"
#include "pmemkit/redo.hpp"

namespace cxlpmem::pmemkit {

/// Result of stage_alloc: where the object will live once the session
/// commits.  `data_off` is the user-visible offset (just past AllocHeader).
struct PreparedAlloc {
  std::uint64_t data_off = 0;
  std::uint64_t total_size = 0;  ///< block/span bytes incl. header
};

struct HeapStats {
  std::uint64_t total_bytes = 0;      ///< heap data capacity
  std::uint64_t allocated_bytes = 0;  ///< sum of live block/span bytes
  std::uint64_t object_count = 0;
  std::uint64_t chunk_count = 0;
  std::uint64_t free_chunks = 0;
};

class Heap {
 public:
  /// Binds to the heap region [heap_off, heap_off+heap_size) of `region`.
  Heap(PersistentRegion& region, std::uint64_t heap_off,
       std::uint64_t heap_size);

  /// Formats a fresh heap (create path): all chunks Free.
  void format();

  /// Rebuilds transient state from persistent chunk metadata (open path).
  /// Validates invariants; throws PoolError on corruption.
  void rebuild();

  /// Stages an allocation of `usable` bytes with the given type number.
  /// Writes the AllocHeader immediately (inert until the staged bitmap /
  /// chunk-state cells commit).  When `zero` is set the data area is
  /// cleared and persisted before publication.
  PreparedAlloc stage_alloc(RedoSession& redo, std::uint64_t usable,
                            std::uint32_t type_num, bool zero);

  /// Transient bookkeeping after the session committed.
  void finish_alloc(const PreparedAlloc& a);

  /// Stages the release of the object at `data_off`.  Throws AllocError for
  /// invalid/double frees.  Safe to call for an object that a recovery
  /// already released when `tolerate_dead` is set (idempotent replay).
  /// Returns false when the object was already dead (nothing staged).
  bool stage_free(RedoSession& redo, std::uint64_t data_off,
                  bool tolerate_dead = false);

  /// Transient bookkeeping after a committed free.
  void finish_free(std::uint64_t data_off);

  /// True when `data_off` points at a live allocation.
  [[nodiscard]] bool is_live(std::uint64_t data_off) const;

  /// AllocHeader of a live object.
  [[nodiscard]] const AllocHeader& header_of(std::uint64_t data_off) const;

  /// Usable size of the live object at `data_off`.
  [[nodiscard]] std::uint64_t usable_size(std::uint64_t data_off) const {
    return header_of(data_off).size;
  }

  /// First live object of `type_num` (any type when type_num == UINT32_MAX),
  /// or 0.  Iteration order: ascending offset.
  [[nodiscard]] std::uint64_t first_object(std::uint32_t type_num) const;
  /// Next live object after `data_off` with matching type, or 0.
  [[nodiscard]] std::uint64_t next_object(std::uint64_t data_off,
                                          std::uint32_t type_num) const;

  [[nodiscard]] HeapStats stats() const;

  /// Largest single allocation this heap can ever satisfy.
  [[nodiscard]] std::uint64_t max_alloc_bytes() const noexcept;

 private:
  struct RunRef {
    std::uint32_t chunk;
    std::uint32_t free_blocks;
  };

  [[nodiscard]] ChunkDesc* chunk_table() noexcept;
  [[nodiscard]] const ChunkDesc* chunk_table() const noexcept;
  [[nodiscard]] std::byte* chunk_data(std::uint32_t chunk) noexcept;
  [[nodiscard]] const std::byte* chunk_data(std::uint32_t chunk) const
      noexcept;
  [[nodiscard]] RunHeader* run_header(std::uint32_t chunk) noexcept;
  [[nodiscard]] const RunHeader* run_header(std::uint32_t chunk) const
      noexcept;

  /// Locates the chunk holding pool offset `off`; kInvalid when outside.
  [[nodiscard]] std::uint32_t chunk_of(std::uint64_t off) const noexcept;

  /// Picks (creating if needed) a run of `class_idx` with a free block.
  std::uint32_t acquire_run(RedoSession& redo, int class_idx);
  /// Finds `span` contiguous free chunks; throws AllocError when exhausted.
  std::uint32_t acquire_span(std::uint32_t span) const;

  PersistentRegion* region_;
  std::uint64_t heap_off_;
  std::uint64_t heap_size_;
  std::uint32_t chunk_count_ = 0;
  std::uint64_t chunks_off_ = 0;  ///< pool offset of chunk 0

  // Transient state.  The heap is NOT internally synchronized: the owning
  // pool serializes allocator operations (stage..commit..finish must be one
  // critical section anyway).
  std::vector<std::vector<std::uint32_t>> partial_runs_;  ///< per class
  std::vector<bool> chunk_free_;  ///< transient mirror of Free state
};

}  // namespace cxlpmem::pmemkit
