// pmemkit/crash_hook.hpp — crash-point instrumentation.
//
// The library calls crash_point("name") between every pair of persistence-
// ordering-relevant operations (log append / flush / fence / state change).
// Tests install a hook that throws CrashInjected at the N-th point, then
// rebuild the pool image from the shadow tracker and verify recovery.  With
// no hook installed the call is a single relaxed load.
#pragma once

#include <functional>
#include <string_view>

namespace cxlpmem::pmemkit {

using CrashHook = std::function<void(std::string_view point)>;

/// Installs `hook` (empty = disable).  Not thread-safe against concurrent
/// pool use — crash tests are single-threaded by design.
void set_crash_hook(CrashHook hook);

/// True when a hook is installed.
[[nodiscard]] bool crash_hook_installed() noexcept;

/// Fires the hook, if any.
void crash_point(std::string_view point);

}  // namespace cxlpmem::pmemkit
