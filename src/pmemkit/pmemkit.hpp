// pmemkit/pmemkit.hpp — umbrella header: the full persistent-memory
// programming model (PMDK libpmemobj workalike).
//
// Quick tour:
//   ObjectPool::create / open     — pmemobj_create / pmemobj_open
//   pool.root<T>()                — pmemobj_root + TOID
//   pool.alloc_atomic / free_atomic — POBJ_ALLOC / POBJ_FREE
//   pool.run_tx([...]{ ... })     — TX_BEGIN/TX_END
//   pool.tx_add_range / tx_alloc / tx_free — pmemobj_tx_*
//   pool.persist / flush / drain  — libpmem primitives
//   CrashSimulator                — exhaustive power-failure testing
#pragma once

#include "pmemkit/crash_hook.hpp"   // IWYU pragma: export
#include "pmemkit/crash_sim.hpp"    // IWYU pragma: export
#include "pmemkit/errors.hpp"       // IWYU pragma: export
#include "pmemkit/heap.hpp"         // IWYU pragma: export
#include "pmemkit/oid.hpp"          // IWYU pragma: export
#include "pmemkit/pool.hpp"         // IWYU pragma: export
#include "pmemkit/shadow.hpp"       // IWYU pragma: export
#include "pmemkit/tx.hpp"           // IWYU pragma: export
