#include "pmemkit/faultkit.hpp"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>

namespace cxlpmem::pmemkit {

namespace {

/// splitmix64 — the deterministic draw behind the random component.  One
/// output per (seed, site, crossing) triple: the injection decision at a
/// crossing never depends on what other threads did in between.
std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

struct Injector {
  std::mutex mu;
  bool armed = false;           // mirrored in g_armed for the fast path
  bool tracing = false;
  FaultPlan plan;
  std::vector<bool> consumed;   // parallel to plan.fixed, one-shot entries
  std::uint64_t crossings[kFaultSiteCount] = {};
  FaultStats stats;
  std::vector<FaultSite> trace;
};

std::atomic<bool> g_armed{false};
std::atomic<bool> g_tracing{false};

Injector& injector() {
  static Injector inj;
  return inj;
}

[[noreturn]] void throw_injected(FaultKind kind, FaultSite site,
                                 std::string_view what) {
  const std::string where =
      std::string(what) + ": injected " + to_string(kind) + " at site '" +
      to_string(site) + "' (faultkit)";
  switch (kind) {
    case FaultKind::Enospc:
      throw PoolError(ErrKind::OutOfSpace,
                      where + ": " + std::strerror(ENOSPC));
    case FaultKind::Corrupt:
      throw PoolError(ErrKind::CorruptImage, where);
    case FaultKind::Eio:
    default:
      throw PoolError(ErrKind::Io, where + ": " + std::strerror(EIO));
  }
}

/// Kinds the random component may draw at a site.  Durable damage
/// (BitFlip) and partial-effect kinds (ShortWrite) are never drawn
/// randomly — they are opt-in via explicit entries.
FaultKind random_kind(FaultSite site, std::uint64_t draw) noexcept {
  switch (site) {
    case FaultSite::MapCreate:
    case FaultSite::Resize:
    case FaultSite::Sync:
      return (draw & 1) != 0 ? FaultKind::Eio : FaultKind::Enospc;
    case FaultSite::MapOpen:
      return FaultKind::Eio;
    case FaultSite::Serve:
      switch (draw % 3) {
        case 0: return FaultKind::Corrupt;
        case 1: return FaultKind::Stall;
        default: return FaultKind::Eio;
      }
  }
  return FaultKind::Eio;
}

// --- DSL ---------------------------------------------------------------------

const char* kSiteNames[kFaultSiteCount] = {"create", "open", "resize", "sync",
                                           "serve"};
const char* kKindNames[kFaultKindCount] = {"eio",  "enospc", "short",
                                           "flip", "corrupt", "stall"};

[[noreturn]] void bad_dsl(std::string_view entry, const char* why) {
  throw std::invalid_argument("faultkit DSL: " + std::string(why) + " in '" +
                              std::string(entry) + "'");
}

std::optional<FaultSite> site_of(std::string_view name) noexcept {
  for (int i = 0; i < kFaultSiteCount; ++i)
    if (name == kSiteNames[i]) return static_cast<FaultSite>(i);
  return std::nullopt;
}

std::optional<FaultKind> kind_of(std::string_view name) noexcept {
  for (int i = 0; i < kFaultKindCount; ++i)
    if (name == kKindNames[i]) return static_cast<FaultKind>(i);
  return std::nullopt;
}

/// Which kinds each site supports (explicit entries are validated so a
/// typo'd plan fails at parse, not by silently never firing).
bool site_supports(FaultSite site, FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::Eio:
      return true;
    case FaultKind::Enospc:
      return site == FaultSite::MapCreate || site == FaultSite::Resize ||
             site == FaultSite::Sync;
    case FaultKind::ShortWrite:
      return site == FaultSite::MapCreate;
    case FaultKind::BitFlip:
      return site == FaultSite::MapOpen;
    case FaultKind::Corrupt:
    case FaultKind::Stall:
      return site == FaultSite::Serve;
  }
  return false;
}

std::uint64_t parse_u64(std::string_view s, std::string_view entry,
                        const char* what) {
  if (s.empty()) bad_dsl(entry, what);
  std::uint64_t v = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') bad_dsl(entry, what);
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return v;
}

void parse_random_entry(std::string_view entry, FaultPlan& plan) {
  // random:seed=<s>,rate=<ppm>[,sites=a|b][,stall=<ms>]
  std::string_view rest = entry.substr(std::strlen("random:"));
  plan.random_sites = 0;
  bool saw_sites = false;
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    const std::string_view kv = rest.substr(0, comma);
    rest = comma == std::string_view::npos ? std::string_view()
                                           : rest.substr(comma + 1);
    const std::size_t eq = kv.find('=');
    if (eq == std::string_view::npos) bad_dsl(entry, "expected key=value");
    const std::string_view key = kv.substr(0, eq);
    const std::string_view val = kv.substr(eq + 1);
    if (key == "seed") {
      plan.seed = parse_u64(val, entry, "bad seed");
    } else if (key == "rate") {
      const std::uint64_t r = parse_u64(val, entry, "bad rate");
      if (r > 1000000) bad_dsl(entry, "rate above 1000000 ppm");
      plan.rate_ppm = static_cast<std::uint32_t>(r);
    } else if (key == "stall") {
      plan.stall_ms =
          static_cast<std::uint32_t>(parse_u64(val, entry, "bad stall"));
    } else if (key == "sites") {
      saw_sites = true;
      std::string_view sites = val;
      while (!sites.empty()) {
        const std::size_t bar = sites.find('|');
        const std::string_view name = sites.substr(0, bar);
        sites = bar == std::string_view::npos ? std::string_view()
                                              : sites.substr(bar + 1);
        const std::optional<FaultSite> s = site_of(name);
        if (!s) bad_dsl(entry, "unknown site");
        plan.random_sites |= 1u << static_cast<int>(*s);
      }
    } else {
      bad_dsl(entry, "unknown key");
    }
  }
  if (!saw_sites) plan.random_sites = (1u << kFaultSiteCount) - 1;
}

}  // namespace

const char* to_string(FaultSite s) noexcept {
  const int i = static_cast<int>(s);
  return i >= 0 && i < kFaultSiteCount ? kSiteNames[i] : "?";
}

const char* to_string(FaultKind k) noexcept {
  const int i = static_cast<int>(k);
  return i >= 0 && i < kFaultKindCount ? kKindNames[i] : "?";
}

FaultPlan FaultPlan::parse(std::string_view dsl) {
  FaultPlan plan;
  plan.rate_ppm = 0;
  std::string_view rest = dsl;
  while (!rest.empty()) {
    const std::size_t semi = rest.find(';');
    std::string_view entry = rest.substr(0, semi);
    rest = semi == std::string_view::npos ? std::string_view()
                                          : rest.substr(semi + 1);
    // Trim spaces so hand-written env values are forgiving.
    while (!entry.empty() && entry.front() == ' ') entry.remove_prefix(1);
    while (!entry.empty() && entry.back() == ' ') entry.remove_suffix(1);
    if (entry.empty()) continue;
    if (entry.rfind("random:", 0) == 0) {
      parse_random_entry(entry, plan);
      continue;
    }
    // <site>:<kind>@<n>[+<arg>]
    const std::size_t colon = entry.find(':');
    if (colon == std::string_view::npos) bad_dsl(entry, "expected site:kind");
    const std::optional<FaultSite> site = site_of(entry.substr(0, colon));
    if (!site) bad_dsl(entry, "unknown site");
    std::string_view kind_at = entry.substr(colon + 1);
    const std::size_t at_pos = kind_at.find('@');
    if (at_pos == std::string_view::npos) bad_dsl(entry, "expected kind@n");
    const std::optional<FaultKind> kind = kind_of(kind_at.substr(0, at_pos));
    if (!kind) bad_dsl(entry, "unknown kind");
    if (!site_supports(*site, *kind))
      bad_dsl(entry, "kind not injectable at this site");
    std::string_view n_arg = kind_at.substr(at_pos + 1);
    Fault f;
    f.site = *site;
    f.kind = *kind;
    const std::size_t plus = n_arg.find('+');
    f.at = parse_u64(n_arg.substr(0, plus), entry, "bad crossing index");
    if (f.at == 0) bad_dsl(entry, "crossing index is 1-based");
    if (plus != std::string_view::npos)
      f.arg = parse_u64(n_arg.substr(plus + 1), entry, "bad argument");
    plan.fixed.push_back(f);
  }
  return plan;
}

std::string FaultPlan::to_dsl() const {
  std::string out;
  for (const Fault& f : fixed) {
    if (!out.empty()) out += ';';
    out += std::string(to_string(f.site)) + ":" + to_string(f.kind) + "@" +
           std::to_string(f.at);
    if (f.arg != 0) out += "+" + std::to_string(f.arg);
  }
  if (rate_ppm != 0) {
    if (!out.empty()) out += ';';
    out += "random:seed=" + std::to_string(seed) +
           ",rate=" + std::to_string(rate_ppm);
    if (random_sites != (1u << kFaultSiteCount) - 1) {
      out += ",sites=";
      bool first = true;
      for (int i = 0; i < kFaultSiteCount; ++i)
        if ((random_sites & (1u << i)) != 0) {
          if (!first) out += '|';
          out += kSiteNames[i];
          first = false;
        }
    }
    out += ",stall=" + std::to_string(stall_ms);
  }
  return out;
}

void arm_faults(FaultPlan plan) {
  Injector& inj = injector();
  const std::lock_guard<std::mutex> lock(inj.mu);
  inj.plan = std::move(plan);
  inj.consumed.assign(inj.plan.fixed.size(), false);
  std::fill(std::begin(inj.crossings), std::end(inj.crossings), 0);
  inj.stats = FaultStats{};
  inj.armed = true;
  g_armed.store(true, std::memory_order_release);
}

bool arm_faults_from_env() {
  const char* dsl = std::getenv("CXLPMEM_FAULTS");
  if (dsl == nullptr || *dsl == '\0') return false;
  FaultPlan plan = FaultPlan::parse(dsl);
  if (const char* seed = std::getenv("CXLPMEM_FAULT_SEED");
      seed != nullptr && *seed != '\0')
    plan.seed = std::strtoull(seed, nullptr, 10);
  arm_faults(std::move(plan));
  return true;
}

void clear_faults() {
  Injector& inj = injector();
  const std::lock_guard<std::mutex> lock(inj.mu);
  inj.armed = false;
  inj.plan = FaultPlan{};
  inj.consumed.clear();
  g_armed.store(false, std::memory_order_release);
}

bool faults_armed() noexcept {
  return g_armed.load(std::memory_order_relaxed);
}

FaultStats fault_stats() {
  Injector& inj = injector();
  const std::lock_guard<std::mutex> lock(inj.mu);
  return inj.stats;
}

void begin_fault_trace() {
  Injector& inj = injector();
  const std::lock_guard<std::mutex> lock(inj.mu);
  inj.tracing = true;
  inj.trace.clear();
  g_tracing.store(true, std::memory_order_release);
}

std::vector<FaultSite> end_fault_trace() {
  Injector& inj = injector();
  const std::lock_guard<std::mutex> lock(inj.mu);
  inj.tracing = false;
  g_tracing.store(false, std::memory_order_release);
  return std::move(inj.trace);
}

std::optional<Fault> fault_point(FaultSite site, std::string_view what) {
  const bool armed = g_armed.load(std::memory_order_relaxed);
  const bool tracing = g_tracing.load(std::memory_order_relaxed);
  if (!armed && !tracing) return std::nullopt;

  Injector& inj = injector();
  std::optional<Fault> fired;
  {
    const std::lock_guard<std::mutex> lock(inj.mu);
    if (inj.tracing) inj.trace.push_back(site);
    if (!inj.armed) return std::nullopt;
    const int si = static_cast<int>(site);
    const std::uint64_t crossing = ++inj.crossings[si];
    ++inj.stats.crossings[si];
    // Explicit one-shot entries first — they pin exact crossings and win
    // over the random draw, so a sweep is exact even under a chaos rate.
    for (std::size_t i = 0; i < inj.plan.fixed.size(); ++i) {
      const Fault& f = inj.plan.fixed[i];
      if (!inj.consumed[i] && f.site == site && f.at == crossing) {
        inj.consumed[i] = true;
        fired = f;
        break;
      }
    }
    if (!fired && inj.plan.rate_ppm != 0 &&
        (inj.plan.random_sites & (1u << si)) != 0) {
      const std::uint64_t draw = splitmix64(
          inj.plan.seed ^ (static_cast<std::uint64_t>(si) << 56) ^ crossing);
      if (draw % 1000000 < inj.plan.rate_ppm) {
        Fault f;
        f.site = site;
        f.kind = random_kind(site, draw >> 32);
        f.at = crossing;
        f.arg = f.kind == FaultKind::Stall ? inj.plan.stall_ms : 0;
        fired = f;
      }
    }
    if (fired) ++inj.stats.injected[static_cast<int>(fired->kind)];
  }
  if (!fired) return std::nullopt;
  switch (fired->kind) {
    case FaultKind::Eio:
    case FaultKind::Enospc:
    case FaultKind::Corrupt:
      throw_injected(fired->kind, site, what);
    case FaultKind::Stall:
      std::this_thread::sleep_for(
          std::chrono::milliseconds(fired->arg != 0 ? fired->arg : 20));
      return std::nullopt;
    case FaultKind::ShortWrite:
    case FaultKind::BitFlip:
      return fired;  // the call site applies the partial effect
  }
  return std::nullopt;
}

MappedFile FaultyResource::map_create(std::uint64_t size) {
  const std::optional<Fault> f =
      fault_point(FaultSite::MapCreate, inner_->describe());
  if (f && f->kind == FaultKind::ShortWrite) {
    // The device accepted the create, materialized a fraction of the
    // requested store, then errored — clean up exactly like
    // MappedFile::create does on a real mid-create failure, so the typed
    // error leaves no half-image to wedge a retry on PoolExists.
    {
      const MappedFile partial =
          inner_->map_create(std::max<std::uint64_t>(size / 2, 4096));
    }
    inner_->remove();
    throw PoolError(ErrKind::Io, inner_->describe() +
                                     ": injected short write at site "
                                     "'create' (faultkit): " +
                                     std::strerror(EIO));
  }
  return inner_->map_create(size);
}

MappedFile FaultyResource::map_open() {
  const std::optional<Fault> f =
      fault_point(FaultSite::MapOpen, inner_->describe());
  MappedFile mf = inner_->map_open();
  if (f && f->kind == FaultKind::BitFlip && mf.size() > 0) {
    // Torn media: XOR one byte of the image the caller is about to
    // validate.  MAP_SHARED makes the flip durable — by design; checksum
    // paths must catch it, and recovery is restoring the byte.
    const std::uint64_t off = std::min<std::uint64_t>(
        f->arg, static_cast<std::uint64_t>(mf.size()) - 1);
    mf.data()[off] ^= std::byte{0x40};
  }
  return mf;
}

}  // namespace cxlpmem::pmemkit
