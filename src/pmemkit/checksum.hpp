// pmemkit/checksum.hpp — Fletcher-64 checksum, the same construction PMDK
// uses for pool headers and log entries.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace cxlpmem::pmemkit {

/// Fletcher-64 over `len` bytes (len is rounded down to a multiple of 4,
/// callers checksum fixed-size structs).  Never returns 0, so 0 can mean
/// "unset" in on-media structs.
[[nodiscard]] inline std::uint64_t fletcher64(const void* data,
                                              std::size_t len) noexcept {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint64_t lo = 0, hi = 0;
  for (std::size_t i = 0; i + 4 <= len; i += 4) {
    std::uint32_t word;
    std::memcpy(&word, p + i, 4);
    lo += word;
    hi += lo;
  }
  const std::uint64_t sum = (hi << 32) | (lo & 0xffffffffu);
  return sum == 0 ? 1 : sum;
}

}  // namespace cxlpmem::pmemkit
