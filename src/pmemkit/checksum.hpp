// pmemkit/checksum.hpp — Fletcher-64 checksum, the same construction PMDK
// uses for pool headers and log entries, plus a lane-parallel variant for
// bulk payload data (checkpoint chunk fingerprints).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace cxlpmem::pmemkit {

/// Fletcher-64 over `len` bytes (len is rounded down to a multiple of 4,
/// callers checksum fixed-size structs).  Never returns 0, so 0 can mean
/// "unset" in on-media structs.
[[nodiscard]] inline std::uint64_t fletcher64(const void* data,
                                              std::size_t len) noexcept {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint64_t lo = 0, hi = 0;
  for (std::size_t i = 0; i + 4 <= len; i += 4) {
    std::uint32_t word;
    std::memcpy(&word, p + i, 4);
    lo += word;
    hi += lo;
  }
  const std::uint64_t sum = (hi << 32) | (lo & 0xffffffffu);
  return sum == 0 ? 1 : sum;
}

/// Bulk-data fingerprint (xxHash64-style rounds over four independent
/// lanes, avalanche finalizer).  fletcher64's lo->hi chain serializes on
/// the adds — fine for 64-byte headers, a bandwidth ceiling for the
/// checkpoint engine that fingerprints every 256 KiB payload chunk each
/// epoch.  The four multiply-rotate lanes here pipeline (one 64-bit
/// multiply in flight per lane), so the scan runs at near-STREAM read
/// rates.  Arbitrary length (tail is zero-padded), never returns 0 so 0
/// can mean "unset" in on-media tables.  NOT interchangeable with
/// fletcher64 — media structs pick one construction and stick with it.
[[nodiscard]] inline std::uint64_t fingerprint64(const void* data,
                                                 std::size_t len) noexcept {
  constexpr std::uint64_t kP1 = 0x9E3779B185EBCA87ull;
  constexpr std::uint64_t kP2 = 0xC2B2AE3D27D4EB4Full;
  constexpr std::uint64_t kP3 = 0x165667B19E3779F9ull;
  const auto rotl = [](std::uint64_t x, int r) noexcept {
    return (x << r) | (x >> (64 - r));
  };
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint64_t acc[4] = {kP1, kP2, kP3, kP1 ^ kP2};
  std::size_t i = 0;
  for (; i + 32 <= len; i += 32) {
    std::uint64_t w[4];
    std::memcpy(w, p + i, 32);
    for (int k = 0; k < 4; ++k) acc[k] = rotl(acc[k] + w[k] * kP2, 31) * kP1;
  }
  if (i < len) {
    std::uint64_t w[4] = {0, 0, 0, 0};
    std::memcpy(w, p + i, len - i);
    for (int k = 0; k < 4; ++k) acc[k] = rotl(acc[k] + w[k] * kP2, 31) * kP1;
  }
  std::uint64_t h = rotl(acc[0], 1) + rotl(acc[1], 7) + rotl(acc[2], 12) +
                    rotl(acc[3], 18) + len;
  h ^= h >> 33;
  h *= kP2;
  h ^= h >> 29;
  h *= kP3;
  h ^= h >> 32;
  return h == 0 ? 1 : h;
}

}  // namespace cxlpmem::pmemkit
