// pmemkit/checksum.hpp — Fletcher-64 checksum, the same construction PMDK
// uses for pool headers and log entries, plus a lane-parallel variant for
// bulk payload data (checkpoint chunk fingerprints).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace cxlpmem::pmemkit {

/// Resumable Fletcher-64: feed discontiguous pieces of the checksummed
/// bytes through update() and read final().  A sub-word tail (of any
/// chunk — leftovers carry across calls) is absorbed zero-padded, so every
/// byte fed in is covered: the undo log uses this checksum as its publish
/// point, and an uncovered tail byte would be a hole a torn write could
/// slip through.  This is what lets the undo-log scan verify header +
/// payload in place — no per-entry copy buffer.
class Fletcher64 {
 public:
  void update(const void* data, std::size_t len) noexcept {
    const auto* p = static_cast<const std::uint8_t*>(data);
    std::size_t i = 0;
    if (pending_len_ > 0) {
      while (pending_len_ < 4 && i < len) pending_[pending_len_++] = p[i++];
      if (pending_len_ == 4) {
        absorb(pending_);
        pending_len_ = 0;
      }
    }
    for (; i + 4 <= len; i += 4) absorb(p + i);
    // pending_len_ is provably 0 here whenever i < len, so the tail can
    // never overflow pending_ — but spell the bound out so constant-size
    // inlined calls don't trip -Waggressive-loop-optimizations.
    while (i < len && pending_len_ < 4) pending_[pending_len_++] = p[i++];
  }
  [[nodiscard]] std::uint64_t final() const noexcept {
    std::uint64_t lo = lo_, hi = hi_;
    if (pending_len_ > 0) {
      std::uint8_t tail[4] = {0, 0, 0, 0};
      for (std::size_t i = 0; i < pending_len_; ++i) tail[i] = pending_[i];
      std::uint32_t word;
      std::memcpy(&word, tail, 4);
      lo += word;
      hi += lo;
    }
    const std::uint64_t sum = (hi << 32) | (lo & 0xffffffffu);
    return sum == 0 ? 1 : sum;
  }

 private:
  void absorb(const std::uint8_t* p) noexcept {
    std::uint32_t word;
    std::memcpy(&word, p, 4);
    lo_ += word;
    hi_ += lo_;
  }

  std::uint64_t lo_ = 0, hi_ = 0;
  std::uint8_t pending_[4] = {0, 0, 0, 0};
  std::size_t pending_len_ = 0;
};

/// Fletcher-64 over `len` bytes; a trailing sub-word is absorbed
/// zero-padded, so all `len` bytes are covered.  Never returns 0, so 0 can
/// mean "unset" in on-media structs.
[[nodiscard]] inline std::uint64_t fletcher64(const void* data,
                                              std::size_t len) noexcept {
  Fletcher64 f;
  f.update(data, len);
  return f.final();
}

/// Bulk-data fingerprint (xxHash64-style rounds over four independent
/// lanes, avalanche finalizer).  fletcher64's lo->hi chain serializes on
/// the adds — fine for 64-byte headers, a bandwidth ceiling for the
/// checkpoint engine that fingerprints every 256 KiB payload chunk each
/// epoch.  The four multiply-rotate lanes here pipeline (one 64-bit
/// multiply in flight per lane), so the scan runs at near-STREAM read
/// rates.  Arbitrary length (tail is zero-padded), never returns 0 so 0
/// can mean "unset" in on-media tables.  NOT interchangeable with
/// fletcher64 — media structs pick one construction and stick with it.
[[nodiscard]] inline std::uint64_t fingerprint64(const void* data,
                                                 std::size_t len) noexcept {
  constexpr std::uint64_t kP1 = 0x9E3779B185EBCA87ull;
  constexpr std::uint64_t kP2 = 0xC2B2AE3D27D4EB4Full;
  constexpr std::uint64_t kP3 = 0x165667B19E3779F9ull;
  const auto rotl = [](std::uint64_t x, int r) noexcept {
    return (x << r) | (x >> (64 - r));
  };
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint64_t acc[4] = {kP1, kP2, kP3, kP1 ^ kP2};
  std::size_t i = 0;
  for (; i + 32 <= len; i += 32) {
    std::uint64_t w[4];
    std::memcpy(w, p + i, 32);  // pmemlint: allow(read into a stack word buffer)
    for (int k = 0; k < 4; ++k) acc[k] = rotl(acc[k] + w[k] * kP2, 31) * kP1;
  }
  if (i < len) {
    std::uint64_t w[4] = {0, 0, 0, 0};
    std::memcpy(w, p + i, len - i);  // pmemlint: allow(read into a stack word buffer)
    for (int k = 0; k < 4; ++k) acc[k] = rotl(acc[k] + w[k] * kP2, 31) * kP1;
  }
  std::uint64_t h = rotl(acc[0], 1) + rotl(acc[1], 7) + rotl(acc[2], 12) +
                    rotl(acc[3], 18) + len;
  h ^= h >> 33;
  h *= kP2;
  h ^= h >> 29;
  h *= kP3;
  h ^= h >> 32;
  return h == 0 ? 1 : h;
}

}  // namespace cxlpmem::pmemkit
