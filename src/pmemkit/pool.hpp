// pmemkit/pool.hpp — ObjectPool, the PMEMobjpool equivalent.
//
// A pool is a mapped file with:  header | 64 lanes | heap.  It provides the
// libpmemobj programming model: a named layout, a root object, atomic
// (failure-atomic, non-transactional) allocation into a destination ObjId,
// typed object ids, undo-log transactions, and open-time recovery.  An
// optional ShadowTracker (Options::track_shadow) maintains the
// crash-consistency image used by the test harness.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "pmemkit/errors.hpp"
#include "pmemkit/heap.hpp"
#include "pmemkit/layout.hpp"
#include "pmemkit/oid.hpp"
#include "pmemkit/pmem_ops.hpp"
#include "pmemkit/resource.hpp"
#include "pmemkit/tx.hpp"

namespace cxlpmem::pmemkit {

/// Any-type wildcard for object iteration.
inline constexpr std::uint32_t kAnyType = ~0u;

struct PoolStats {
  HeapStats heap;
  std::uint64_t pool_size = 0;
  std::uint64_t lane_count = 0;
  /// Times a thread blocked waiting for a free transaction lane (transient,
  /// since open) — the pool-level contention signal next to the heap's
  /// run_lock_skips/run_lock_waits.
  std::uint64_t lane_waits = 0;
  std::uint32_t layout_version = 0;  ///< on-media format version
  /// Completed resize() operations on this handle (transient, since open).
  std::uint64_t resizes = 0;
  bool recovered = false;  ///< last open performed recovery actions
};

struct PoolReport;  // introspect.hpp

struct PoolOptions {
  /// Maintain a ShadowTracker for crash simulation (slower).
  bool track_shadow = false;
  /// Undo-entry publish protocol.  TwoPersistReference is the version-1
  /// baseline (tail bump per entry, O(n) snapshot scan), compiled in so
  /// bench/micro_tx can A/B the fence halving on identical pools; recovery
  /// is protocol-agnostic.
  TxPublish tx_publish = TxPublish::SingleFence;
  /// Opt-in open-time migration: a version-1 image (or one carrying an
  /// interrupted migration marker) is upgraded in place to the current
  /// layout before the open proceeds (see evolve.hpp for the crash
  /// discipline).  Without it, open() rejects such images with
  /// VersionMismatch / MigrationPending respectively.
  bool migrate = false;
  /// Attach PmemSan, the runtime persistency sanitizer (pmemsan.hpp): every
  /// store/flush/fence is checked against the x86+ADR discipline and
  /// violations are delivered to the configured ViolationSink.  Also
  /// enabled process-wide by CXLPMEM_PMEMCHECK=1.
  bool pmemcheck = false;
};

class ObjectPool {
 public:
  using Options = PoolOptions;

  /// Creates a new pool inside `resource`.  `size` >= min_pool_size().  The
  /// layout name is checked on every open (pmemobj_create semantics).
  static std::unique_ptr<ObjectPool> create(PmemResource& resource,
                                            std::string_view layout,
                                            std::uint64_t size,
                                            Options options = Options());

  /// Opens the pool held by `resource`, validating
  /// magic/version/layout/checksum and running recovery.
  static std::unique_ptr<ObjectPool> open(PmemResource& resource,
                                          std::string_view layout,
                                          Options options = Options());

  /// Path conveniences: bind a FileResource on `path` and delegate.
  static std::unique_ptr<ObjectPool> create(
      const std::filesystem::path& path, std::string_view layout,
      std::uint64_t size, Options options = Options());
  static std::unique_ptr<ObjectPool> open(const std::filesystem::path& path,
                                          std::string_view layout,
                                          Options options = Options());

  /// Smallest pool create() accepts: header + lanes + enough chunks that a
  /// handful of distinct size classes can coexist (each run claims a whole
  /// chunk).
  [[nodiscard]] static constexpr std::uint64_t min_pool_size() noexcept {
    return kHeaderSize + kLaneCount * kLaneSize + 8 * kChunkSize;
  }

  ~ObjectPool();
  ObjectPool(const ObjectPool&) = delete;
  ObjectPool& operator=(const ObjectPool&) = delete;

  // --- identity ------------------------------------------------------------
  [[nodiscard]] std::uint64_t pool_id() const noexcept;
  [[nodiscard]] std::string layout() const;
  [[nodiscard]] std::uint64_t size() const noexcept { return region_.size(); }
  [[nodiscard]] const std::filesystem::path& path() const noexcept {
    return path_;
  }
  /// True when the last open() had recovery work to do (dirty shutdown).
  [[nodiscard]] bool recovered() const noexcept { return recovered_; }

  // --- address translation ---------------------------------------------------
  /// Direct pointer for an oid; throws PoolError on foreign/out-of-range oid.
  [[nodiscard]] void* direct(ObjId oid);
  [[nodiscard]] const void* direct(ObjId oid) const;
  template <typename T>
  [[nodiscard]] T* direct(TypedOid<T> oid) {
    return static_cast<T*>(direct(oid.raw));
  }
  /// direct() plus a type-number check against the object's AllocHeader;
  /// throws PoolError(TypeMismatch) when the allocation was made with a
  /// different type number.  Backs the facade's checked ptr<T> dereference.
  [[nodiscard]] void* direct_checked(ObjId oid, std::uint32_t expected_type);
  /// ObjId for a pointer inside the pool (inverse of direct()).
  [[nodiscard]] ObjId oid_for(const void* p) const;

  // --- persistence primitives (libpmem vocabulary) -------------------------
  void persist(const void* p, std::size_t n) { region_.persist(p, n); }
  void flush(const void* p, std::size_t n) { region_.flush(p, n); }
  void drain() { region_.drain(); }
  void memcpy_persist(void* dst, const void* src, std::size_t n) {
    region_.memcpy_persist(dst, src, n);
  }
  void memset_persist(void* dst, int value, std::size_t n) {
    region_.memset_persist(dst, value, n);
  }
  /// Declares a raw store (writes through a direct() pointer) to the
  /// sanitizer and crash tooling without flushing it.  Use before a
  /// separate flush/persist when the bytes were written in place; the
  /// *_persist helpers annotate implicitly.
  void note_store(const void* p, std::size_t n) { region_.note_store(p, n); }

  // --- atomic (non-transactional, failure-atomic) API ----------------------
  /// Allocates `size` bytes.  When `dest` points inside the pool, the oid is
  /// published into it atomically with the allocation (POBJ_ALLOC
  /// semantics); otherwise it is simply returned.
  ObjId alloc_atomic(std::uint64_t size, std::uint32_t type_num,
                     ObjId* dest = nullptr, bool zero = false);
  /// Frees `*dest` and nulls it in one atomic step (POBJ_FREE semantics).
  void free_atomic(ObjId* dest);
  /// Frees an oid the caller forgets by other means.
  void free_atomic(ObjId oid);

  [[nodiscard]] std::uint64_t usable_size(ObjId oid) const;
  [[nodiscard]] std::uint32_t type_of(ObjId oid) const;

  /// Typed iteration (POBJ_FIRST/POBJ_NEXT equivalents).
  [[nodiscard]] ObjId first(std::uint32_t type_num = kAnyType) const;
  [[nodiscard]] ObjId next(ObjId oid, std::uint32_t type_num = kAnyType) const;

  // --- root object ----------------------------------------------------------
  /// Returns the root object, allocating it (zeroed) on first use.
  /// The size is fixed at first allocation; a mismatching later request
  /// throws PoolError (pmemobj_root with a larger size would resize — not
  /// supported here).  A non-zero `type_num` types the root allocation and
  /// is validated against an existing root's recorded type on reopen
  /// (PoolError(TypeMismatch) on disagreement); 0 skips the check, keeping
  /// the untyped root_raw path byte-compatible.
  ObjId root_raw(std::uint64_t size, std::uint32_t type_num = 0);
  template <typename T>
  TypedOid<T> root() {
    return TypedOid<T>{root_raw(sizeof(T))};
  }

  // --- transactions ----------------------------------------------------------
  /// Runs `fn` inside a transaction.  Nested calls on the same thread join
  /// the outer transaction (flat nesting, PMDK-style).  Any exception aborts
  /// the (outer) transaction and rethrows.
  template <typename F>
  void run_tx(F&& fn) {
    if (Transaction* outer = current_tx(); outer != nullptr) {
      fn();  // flat nesting: join the enclosing transaction
      return;
    }
    const std::uint32_t lane = acquire_tx_lane();
    Transaction tx(*this, lane);
    // Unconditional cleanup: the thread-local registration and the lane must
    // be reclaimed on every exit path, including a simulated power cut
    // thrown from inside begin()/commit().
    struct Cleanup {
      ObjectPool* pool;
      std::uint32_t lane;
      ~Cleanup() {
        pool->set_current_tx(nullptr);
        pool->release_tx_lane(lane);
      }
    } cleanup{this, lane};
    set_current_tx(&tx);
    try {
      tx.begin();
      fn();
      tx.commit();
    } catch (const CrashInjected&) {
      throw;  // power cut: no abort work may happen
    } catch (...) {
      if (!tx.finished_) tx.abort();
      throw;
    }
  }

  /// The calling thread's open transaction on this pool, or nullptr.
  [[nodiscard]] Transaction* current_tx() const;

  /// pmemobj_tx_* conveniences that require an open transaction.
  void tx_add_range(void* ptr, std::size_t len);
  ObjId tx_alloc(std::uint64_t size, std::uint32_t type_num,
                 bool zero = false);
  void tx_free(ObjId oid);

  // --- stats / introspection -------------------------------------------------
  [[nodiscard]] PoolStats stats() const;
  [[nodiscard]] PersistentRegion& region() noexcept { return region_; }
  [[nodiscard]] ShadowTracker* shadow() noexcept { return region_.shadow(); }
  /// The attached persistency sanitizer, or nullptr when pmemcheck is off.
  [[nodiscard]] PmemSan* pmemsan() noexcept { return region_.pmemsan(); }
  [[nodiscard]] Heap& heap() noexcept { return *heap_; }
  [[nodiscard]] const Heap& heap() const noexcept { return *heap_; }

  // --- online evolution ------------------------------------------------------
  /// Grows or shrinks the pool in place (ftruncate + mremap + heap span
  /// extension/retraction).  `new_size` is rounded up to a whole heap chunk.
  /// Grow: the new span is allocatable the moment the call returns.  Shrink:
  /// refuses with PoolError(ShrinkBlocked) while live objects occupy the
  /// doomed tail; the last-added span is retracted whole (partial-span
  /// shrinks round up to the span boundary).  The call quiesces the pool by
  /// draining all transaction lanes — calling it from inside a transaction
  /// or while holding a LaneSession throws TxError(TxMisuse).  The mapping
  /// base may move: raw pointers into the pool are invalidated (ObjId /
  /// ptr<T> handles stay valid), and concurrent readers are the caller's
  /// responsibility to stop.  Crash-safe: a durable marker brackets the
  /// operation and open() completes or rolls it back.
  void resize(std::uint64_t new_size);

  /// Marks the pool as crash-simulated: the destructor will neither mark a
  /// clean shutdown nor sync.  Used by the crash harness after CrashInjected.
  void mark_crashed() noexcept { crashed_ = true; }

  /// The undo-entry publish protocol this handle runs (PoolOptions).
  [[nodiscard]] TxPublish tx_publish() const noexcept { return tx_publish_; }

  /// Pins a transaction lane to the constructing thread for the session's
  /// lifetime: every run_tx (and atomic-op redo session) this thread runs
  /// on the pool reuses the pinned lane without touching the lane mutex.
  /// This is the server-worker idiom — a shard thread that commits one
  /// transaction per request batch checks its lane out once, not per batch.
  /// One session per thread per pool (a second construction throws
  /// TxError(TxMisuse)); the session must be destroyed on the thread that
  /// created it, before the pool.
  class LaneSession {
   public:
    explicit LaneSession(ObjectPool& pool);
    ~LaneSession();
    LaneSession(const LaneSession&) = delete;
    LaneSession& operator=(const LaneSession&) = delete;
    [[nodiscard]] std::uint32_t lane() const noexcept { return lane_; }

   private:
    ObjectPool& pool_;
    std::uint32_t lane_;
  };

 private:
  friend class Transaction;
  friend bool recover_lane(ObjectPool& pool, std::uint32_t lane);
  friend struct PoolReport;
  friend PoolReport inspect(const ObjectPool& pool);
  friend void migrate_v1_pool(ObjectPool& pool, std::string_view layout);

  ObjectPool(MappedFile file, Options options);

  [[nodiscard]] PoolHeader& header() noexcept {
    return *reinterpret_cast<PoolHeader*>(region_.base());
  }
  [[nodiscard]] const PoolHeader& header() const noexcept {
    return *reinterpret_cast<const PoolHeader*>(region_.base());
  }
  [[nodiscard]] LaneHeader& lane_header(std::uint32_t lane) noexcept;
  [[nodiscard]] std::byte* lane_undo(std::uint32_t lane) noexcept;
  [[nodiscard]] std::uint64_t lane_off(std::uint32_t lane) const noexcept;

  void run_recovery();
  /// Session-aware checkout: the calling thread's pinned LaneSession lane
  /// when it has one, else a lane from the free pool (raw path).
  std::uint32_t acquire_tx_lane();
  void release_tx_lane(std::uint32_t lane);
  std::uint32_t acquire_lane_raw();
  void release_lane_raw(std::uint32_t lane);
  void set_current_tx(Transaction* tx);
  /// Lane index of the calling thread's open transaction on this pool, or
  /// kLaneCount when there is none.  Lets introspection recognize the one
  /// in-flight lane it may scan race-free (its own).
  [[nodiscard]] std::uint32_t current_tx_lane() const;

  /// RAII lane for a non-transactional (atomic) operation's redo log: the
  /// calling thread's open transaction lane when there is one (safe — redo
  /// sessions on a lane are strictly sequential within a thread), otherwise
  /// a lane checked out of the free pool for the call's duration.  This is
  /// what retires the old "all atomic ops through lane 0" funnel.
  class OpLane {
   public:
    explicit OpLane(ObjectPool& pool);
    ~OpLane();
    OpLane(const OpLane&) = delete;
    OpLane& operator=(const OpLane&) = delete;
    [[nodiscard]] std::uint32_t lane() const noexcept { return lane_; }

   private:
    ObjectPool& pool_;
    std::uint32_t lane_;
    bool owned_;
  };

  /// All-lane quiesce for evolution ops: checks out every lane (raw path)
  /// so no transaction or atomic op can be in flight, then hands them back.
  /// Throws TxError(TxMisuse) when the calling thread itself holds a lane.
  class Quiesce {
   public:
    explicit Quiesce(ObjectPool& pool);
    ~Quiesce();
    Quiesce(const Quiesce&) = delete;
    Quiesce& operator=(const Quiesce&) = delete;

   private:
    ObjectPool& pool_;
  };

  PersistentRegion region_;
  std::filesystem::path path_;
  std::unique_ptr<Heap> heap_;
  TxPublish tx_publish_ = TxPublish::SingleFence;
  bool recovered_ = false;
  bool crashed_ = false;
  std::atomic<std::uint64_t> resizes_{0};

  /// Serializes first-use root allocation (a once-per-pool event); steady-
  /// state allocation takes only the heap's sharded locks.
  std::mutex root_mu_;

  /// Transaction lane pool (lanes 0 .. kLaneCount-1).
  std::mutex lane_mu_;
  std::condition_variable lane_cv_;
  std::vector<std::uint32_t> free_lanes_;
  std::atomic<std::uint64_t> lane_waits_{0};
};

// --- open-pool registry ------------------------------------------------------
// Every live ObjectPool is registered process-wide (pmemobj_pool_by_oid /
// pmemobj_pool_by_ptr equivalents).  This is what lets a persistent typed
// pointer carry nothing but an ObjId and still resolve to an address, and
// what backs the field wrapper's misuse check (a transactional write into a
// pool the thread has no transaction on).  The wrapper's *hot path* never
// touches the registry — it uses the thread-local tx_pool_containing()
// below.  Lookups return nullptr once the pool is closed.
//
// Both lookups are served from a small thread-local cache in the steady
// state: the registry keeps a generation counter (bumped on every pool
// open/close, i.e. the only events that can change an answer), and a
// lookup whose cached generation still matches returns without taking the
// registry's shared lock or scanning it.  A miss — or any open/close since
// the cache was filled — falls back to the locked scan and refills.  This
// is what makes a ptr<T> dereference lock-free and scan-free on the read
// path; the usual registry lifetime contract is unchanged (a pointer
// resolved from either path is valid only while its pool stays open).

/// The open pool whose pool_id matches, or nullptr.  When two open pools
/// share an id (a freshly migrated copy next to its source), the most
/// recently opened one wins.
[[nodiscard]] ObjectPool* pool_by_id(std::uint64_t pool_id) noexcept;

/// The open pool whose mapping contains `p`, or nullptr.
[[nodiscard]] ObjectPool* pool_containing(const void* p) noexcept;

/// Pool open/close epoch — the thread-local lookup caches invalidate on
/// any change.  Exposed for tests.
[[nodiscard]] std::uint64_t pool_registry_generation() noexcept;

/// The pool on which the *calling thread* has an open transaction and whose
/// mapping contains `p`, or nullptr.  Purely thread-local (scans the
/// thread's open-transaction list, at most a handful of entries) — no
/// global lock, which is what keeps snapshot-on-write field wrappers off
/// the registry on the transactional hot path.
[[nodiscard]] ObjectPool* tx_pool_containing(const void* p) noexcept;

/// True when the calling thread has any open transaction (thread-local).
[[nodiscard]] bool thread_in_tx() noexcept;

namespace detail {
/// Bumps the registry generation without an open/close: resize may mremap a
/// pool's base, which stales every thread-local lookup-cache entry exactly
/// like a close-and-reopen would.
void bump_pool_generation() noexcept;
}  // namespace detail

}  // namespace cxlpmem::pmemkit
