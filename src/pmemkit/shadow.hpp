// pmemkit/shadow.hpp — cacheline-granular crash-consistency tracker
// (the pmemcheck / Yat equivalent for this project).
//
// Model (x86 + ADR semantics):
//   * a store lands in the cache — NOT yet persistent;
//   * CLWB/CLFLUSHOPT marks lines for write-back — persistence is only
//     guaranteed after the next SFENCE;
//   * at SFENCE, every line flushed since the previous fence is durably in
//     the persistence domain;
//   * a line that was stored to but never flushed MAY still persist at any
//     moment (cache eviction) — software must never rely on it, and a sound
//     checker must be able to make either choice.
//
// ShadowTracker keeps a second image of the pool that receives data only at
// fence points.  crash_image() returns what the media would hold if power
// were cut now:
//   DropUnflushed  — strict loss of everything not explicitly persisted
//                    (catches missing flush/fence bugs);
//   RandomEvict    — additionally lets each known-dirty line persist with
//                    p=1/2, seeded (catches ordering bugs that only appear
//                    when a line leaks early).
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <unordered_set>
#include <vector>

namespace cxlpmem::pmemkit {

enum class CrashPolicy {
  DropUnflushed,
  RandomEvict,
  /// eADR / Global Persistent Flush: the persistence domain includes the
  /// CPU caches (a battery drains them on power loss), so EVERY store
  /// survives — flushes become performance hints.  This is the stronger
  /// domain a battery-backed CXL device enables (CXL GPF) and the paper's
  /// battery argument taken to its conclusion.
  EadrEverythingSurvives,
};

class ShadowTracker {
 public:
  /// Tracks a live region of `size` bytes.  `live` must outlive the tracker.
  /// The shadow starts as a copy of the live image (a freshly created pool
  /// is all-zero + whatever create() persists explicitly).
  ///
  /// Internally synchronized: concurrent lanes flush/fence in parallel, so
  /// the tracker serializes its bookkeeping (crash tests may be
  /// multi-threaded; the fence copy itself reads the live image, which is
  /// racy only for lines the crashing threads were still mutating — exactly
  /// the lines a real power cut would tear).
  ShadowTracker(const std::byte* live, std::size_t size);

  /// Notes that [off, off+len) is being (or about to be) modified without a
  /// flush yet — e.g. a transaction handing the range to user code.
  void record_store(std::size_t off, std::size_t len);

  /// CLWB equivalent: lines of [off, off+len) become *pending*.
  void record_flush(std::size_t off, std::size_t len);

  /// SFENCE equivalent: pending lines are copied live -> shadow and cease to
  /// be dirty.
  void record_fence();

  /// Follows a live-region resize (pool grow/shrink): re-points at the
  /// possibly-moved mapping and resizes the shadow to match.  Grown bytes
  /// enter the shadow as the live image holds them (file extension zeroes
  /// are durable the moment ftruncate returns — there is no cache between
  /// the kernel's zero page and the file); dropped bytes take their line
  /// bookkeeping with them.
  void remap(const std::byte* live, std::size_t size);

  /// The media image after a power cut at this instant.
  [[nodiscard]] std::vector<std::byte> crash_image(
      CrashPolicy policy, std::uint64_t seed = 0) const;

  [[nodiscard]] std::size_t size() const noexcept { return shadow_.size(); }
  [[nodiscard]] std::size_t dirty_lines() const noexcept {
    const std::lock_guard<std::mutex> lock(mu_);
    return dirty_.size();
  }
  [[nodiscard]] std::size_t pending_lines() const noexcept {
    const std::lock_guard<std::mutex> lock(mu_);
    return pending_.size();
  }

 private:
  mutable std::mutex mu_;
  const std::byte* live_;
  std::vector<std::byte> shadow_;
  /// Line indices stored-to but not yet persisted.
  std::unordered_set<std::size_t> dirty_;
  /// Line indices flushed but awaiting a fence.
  std::unordered_set<std::size_t> pending_;
};

}  // namespace cxlpmem::pmemkit
