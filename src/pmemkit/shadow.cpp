#include "pmemkit/shadow.hpp"

#include <algorithm>
#include <cstring>

namespace cxlpmem::pmemkit {

namespace {
constexpr std::size_t kLine = 64;

/// splitmix64 — deterministic per-line eviction coin.
std::uint64_t mix(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}
}  // namespace

ShadowTracker::ShadowTracker(const std::byte* live, std::size_t size)
    : live_(live), shadow_(live, live + size) {}

void ShadowTracker::record_store(std::size_t off, std::size_t len) {
  if (len == 0) return;
  const std::lock_guard<std::mutex> lock(mu_);
  const std::size_t first = off / kLine;
  const std::size_t last = (off + len - 1) / kLine;
  for (std::size_t l = first; l <= last; ++l) dirty_.insert(l);
}

void ShadowTracker::record_flush(std::size_t off, std::size_t len) {
  if (len == 0) return;
  const std::lock_guard<std::mutex> lock(mu_);
  const std::size_t first = off / kLine;
  const std::size_t last = (off + len - 1) / kLine;
  for (std::size_t l = first; l <= last; ++l) pending_.insert(l);
}

void ShadowTracker::record_fence() {
  const std::lock_guard<std::mutex> lock(mu_);
  for (const std::size_t l : pending_) {
    const std::size_t off = l * kLine;
    const std::size_t n = std::min(kLine, shadow_.size() - off);
    std::memcpy(shadow_.data() + off, live_ + off, n);
    dirty_.erase(l);
  }
  pending_.clear();
}

void ShadowTracker::remap(const std::byte* live, std::size_t size) {
  const std::lock_guard<std::mutex> lock(mu_);
  const std::size_t old = shadow_.size();
  live_ = live;
  shadow_.resize(size);
  if (size > old) {
    std::memcpy(shadow_.data() + old, live_ + old, size - old);
  } else if (size < old) {
    const std::size_t lines = (size + kLine - 1) / kLine;
    std::erase_if(dirty_, [&](std::size_t l) { return l >= lines; });
    std::erase_if(pending_, [&](std::size_t l) { return l >= lines; });
  }
}

std::vector<std::byte> ShadowTracker::crash_image(CrashPolicy policy,
                                                  std::uint64_t seed) const {
  const std::lock_guard<std::mutex> lock(mu_);
  if (policy == CrashPolicy::EadrEverythingSurvives) {
    // Caches are inside the persistence domain: media == everything stored.
    return std::vector<std::byte>(live_, live_ + shadow_.size());
  }
  std::vector<std::byte> img = shadow_;
  if (policy == CrashPolicy::RandomEvict) {
    // Flushed-but-not-fenced lines and plain dirty lines alike may or may
    // not have reached media; toss a deterministic coin per line.
    auto maybe_evict = [&](std::size_t l) {
      if ((mix(seed ^ (0xabcdull + l)) & 1) == 0) return;
      const std::size_t off = l * kLine;
      const std::size_t n = std::min(kLine, img.size() - off);
      std::memcpy(img.data() + off, live_ + off, n);
    };
    for (const std::size_t l : dirty_) maybe_evict(l);
    for (const std::size_t l : pending_) maybe_evict(l);
  }
  return img;
}

}  // namespace cxlpmem::pmemkit
