// pmemkit/oid.hpp — persistent object identifiers (PMEMoid / TOID
// equivalents).
//
// An ObjId is position-independent: (pool id, byte offset).  It is the only
// pointer representation ever stored *inside* a pool; raw virtual addresses
// never are, because the mapping address changes between runs.
#pragma once

#include <compare>
#include <cstdint>

namespace cxlpmem::pmemkit {

struct ObjId {
  std::uint64_t pool_id = 0;
  std::uint64_t off = 0;

  [[nodiscard]] constexpr bool is_null() const noexcept {
    return pool_id == 0 && off == 0;
  }
  friend constexpr auto operator<=>(const ObjId&, const ObjId&) = default;
};

inline constexpr ObjId kNullOid{};

/// Typed wrapper (TOID equivalent).  Carries no pool reference — dereference
/// happens through ObjectPool::direct<T>() so the type is checked against
/// the allocation's type number where the caller asks for it.
template <typename T>
struct TypedOid {
  ObjId raw;
  [[nodiscard]] constexpr bool is_null() const noexcept {
    return raw.is_null();
  }
  friend constexpr auto operator<=>(const TypedOid&,
                                    const TypedOid&) = default;
};

}  // namespace cxlpmem::pmemkit
