#include "pmemkit/crash_sim.hpp"

#include <fstream>

#include "pmemkit/crash_hook.hpp"

namespace cxlpmem::pmemkit {

namespace {

void remove_if_exists(const std::filesystem::path& p) {
  std::error_code ec;
  std::filesystem::remove(p, ec);
}

void write_image(const std::filesystem::path& p,
                 const std::vector<std::byte>& image) {
  std::ofstream out(p, std::ios::binary | std::ios::trunc);
  if (!out) throw PoolError("cannot rewrite crash image: " + p.string());
  out.write(reinterpret_cast<const char*>(image.data()),
            static_cast<std::streamsize>(image.size()));
  if (!out) throw PoolError("short write of crash image: " + p.string());
}

/// RAII hook guard — never leave a crash hook installed on early exit.
struct HookGuard {
  explicit HookGuard(CrashHook hook) { set_crash_hook(std::move(hook)); }
  ~HookGuard() { set_crash_hook({}); }
};

}  // namespace

std::unique_ptr<ObjectPool> CrashSimulator::fresh_pool(bool track_shadow,
                                                       const PoolFn& setup) {
  remove_if_exists(config_.pool_path);
  ObjectPool::Options opts;
  opts.track_shadow = track_shadow;
  auto pool = ObjectPool::create(config_.pool_path, config_.layout,
                                 config_.pool_size, opts);
  if (setup) setup(*pool);
  return pool;
}

std::size_t CrashSimulator::run(const PoolFn& setup, const PoolFn& scenario,
                                const PoolFn& verify) {
  // Pass 1: count crash points.
  std::size_t total_points = 0;
  {
    auto pool = fresh_pool(/*track_shadow=*/false, setup);
    HookGuard guard([&](std::string_view) { ++total_points; });
    scenario(*pool);
  }
  remove_if_exists(config_.pool_path);

  // Pass 2: one run per point.
  for (std::size_t k = 1; k <= total_points; ++k) {
    auto pool = fresh_pool(/*track_shadow=*/true, setup);
    bool crashed = false;
    {
      std::size_t seen = 0;
      HookGuard guard([&](std::string_view point) {
        if (++seen == k) throw CrashInjected{std::string(point)};
      });
      try {
        scenario(*pool);
      } catch (const CrashInjected&) {
        crashed = true;
      }
    }
    if (!crashed)
      throw PoolError("crash point count changed between passes");

    pool->mark_crashed();
    const std::vector<std::byte> image =
        pool->shadow()->crash_image(config_.policy, config_.seed + k);
    pool.reset();
    write_image(config_.pool_path, image);

    auto reopened =
        ObjectPool::open(config_.pool_path, config_.layout, {});
    verify(*reopened);
    reopened.reset();
    remove_if_exists(config_.pool_path);
  }
  return total_points;
}

}  // namespace cxlpmem::pmemkit
