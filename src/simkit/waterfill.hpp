// simkit/waterfill.hpp — max-min fair bandwidth allocation by progressive
// filling ("water-filling").
//
// The solver is generic: it knows nothing about memories or links, only
// about capacitated resources and flows that consume them linearly.  Every
// bandwidth number the project reports comes out of this solver, so its
// invariants are the ones the property tests pin down:
//
//   I1 (feasibility)   sum_f coeff(f,r) * rate(f) <= capacity(r)  for all r
//   I2 (cap respect)   rate(f) <= rate_cap(f)                     for all f
//   I3 (bottleneck)    every flow is either at its own cap, or uses at least
//                      one saturated resource
//   I4 (max-min)       raising any flow's rate requires lowering the rate of
//                      some flow with an equal-or-smaller rate
//
// Progressive filling produces the unique max-min fair allocation for this
// linear model; it terminates in at most |flows| + |resources| rounds.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "simkit/types.hpp"

namespace cxlpmem::simkit {

/// A capacitated resource (GB/s).
struct Resource {
  std::string name;
  double capacity_gbs = 0.0;
};

/// A flow: consumes `coeff` GB/s of each listed resource per GB/s of its own
/// rate, up to `rate_cap_gbs` (kUnbounded when only resources constrain it).
struct SolverFlow {
  double rate_cap_gbs = kUnbounded;
  /// (resource index, coefficient > 0) pairs; a resource appears at most once.
  std::vector<std::pair<int, double>> usage;
};

/// Solver output: one rate per flow (same order) plus per-resource
/// utilization in [0, 1] for diagnostics and the loaded-latency pass.
struct Allocation {
  std::vector<double> rates_gbs;
  std::vector<double> utilization;
  int rounds = 0;
};

/// Runs progressive filling.  Throws std::invalid_argument when a flow is
/// unbounded (no finite cap and no resource usage) or indices are bad.
[[nodiscard]] Allocation max_min_fair(const std::vector<Resource>& resources,
                                      const std::vector<SolverFlow>& flows);

}  // namespace cxlpmem::simkit
