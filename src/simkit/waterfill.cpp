#include "simkit/waterfill.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace cxlpmem::simkit {

namespace {
// Relative slack under which a resource counts as saturated / a flow counts
// as at-cap.  Progressive filling hits boundaries exactly in real arithmetic;
// the epsilon only absorbs floating-point rounding.
constexpr double kRelEps = 1e-9;
}  // namespace

Allocation max_min_fair(const std::vector<Resource>& resources,
                        const std::vector<SolverFlow>& flows) {
  const int nr = static_cast<int>(resources.size());
  const int nf = static_cast<int>(flows.size());

  for (const Resource& r : resources)
    if (!(r.capacity_gbs > 0))
      throw std::invalid_argument("resource capacity must be positive: " +
                                  r.name);
  for (const SolverFlow& f : flows) {
    if (f.rate_cap_gbs == kUnbounded && f.usage.empty())
      throw std::invalid_argument("flow is unbounded");
    for (auto [r, c] : f.usage) {
      if (r < 0 || r >= nr)
        throw std::invalid_argument("flow references unknown resource");
      if (!(c > 0))
        throw std::invalid_argument("flow coefficient must be positive");
    }
  }

  Allocation out;
  out.rates_gbs.assign(nf, 0.0);
  std::vector<double> remaining(nr);
  for (int r = 0; r < nr; ++r) remaining[r] = resources[r].capacity_gbs;
  std::vector<bool> active(nf, true);
  int active_count = nf;

  while (active_count > 0) {
    ++out.rounds;

    // Aggregate demand of active flows on each resource.
    std::vector<double> demand(nr, 0.0);
    for (int f = 0; f < nf; ++f) {
      if (!active[f]) continue;
      for (auto [r, c] : flows[f].usage) demand[r] += c;
    }

    // Largest uniform rate increment before some boundary is hit.
    double delta = kUnbounded;
    for (int r = 0; r < nr; ++r)
      if (demand[r] > 0) delta = std::min(delta, remaining[r] / demand[r]);
    for (int f = 0; f < nf; ++f)
      if (active[f] && flows[f].rate_cap_gbs != kUnbounded)
        delta = std::min(delta, flows[f].rate_cap_gbs - out.rates_gbs[f]);

    if (!std::isfinite(delta))
      throw std::invalid_argument(
          "active flows have no binding constraint (unbounded system)");

    for (int f = 0; f < nf; ++f)
      if (active[f]) out.rates_gbs[f] += delta;
    for (int r = 0; r < nr; ++r) remaining[r] -= demand[r] * delta;

    // Freeze flows at their cap and flows crossing a saturated resource.
    std::vector<bool> saturated(nr, false);
    for (int r = 0; r < nr; ++r)
      saturated[r] = remaining[r] <= kRelEps * resources[r].capacity_gbs;

    bool froze = false;
    for (int f = 0; f < nf; ++f) {
      if (!active[f]) continue;
      bool freeze = false;
      if (flows[f].rate_cap_gbs != kUnbounded &&
          out.rates_gbs[f] >=
              flows[f].rate_cap_gbs * (1.0 - kRelEps) - kRelEps)
        freeze = true;
      for (auto [r, c] : flows[f].usage)
        if (saturated[r]) freeze = true;
      if (freeze) {
        active[f] = false;
        --active_count;
        froze = true;
      }
    }
    // delta is chosen to land exactly on a boundary, so some flow must
    // freeze every round; guard against FP pathology regardless.
    if (!froze) break;
  }

  out.utilization.assign(nr, 0.0);
  for (int r = 0; r < nr; ++r) {
    const double used = resources[r].capacity_gbs - remaining[r];
    out.utilization[r] =
        std::clamp(used / resources[r].capacity_gbs, 0.0, 1.0);
  }
  return out;
}

}  // namespace cxlpmem::simkit
