#include "simkit/bwmodel.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace cxlpmem::simkit {

namespace {

/// Internal resource directory: two capacities (read/write) per memory
/// device, two directional capacities per link, plus an optional combined
/// capacity per link.
struct ResourceMap {
  std::vector<Resource> resources;
  std::vector<int> mem_read, mem_write, mem_combined;  // by MemoryId
  std::vector<int> link_tx, link_rx, link_combined;  // by LinkId; -1 if none

  explicit ResourceMap(const Machine& m) {
    mem_read.assign(m.memory_count(), -1);
    mem_write.assign(m.memory_count(), -1);
    mem_combined.assign(m.memory_count(), -1);
    link_tx.assign(m.link_count(), -1);
    link_rx.assign(m.link_count(), -1);
    link_combined.assign(m.link_count(), -1);

    for (MemoryId id = 0; id < m.memory_count(); ++id) {
      const MemoryDesc& d = m.memory(id);
      mem_read[id] = add(d.name + "/read", d.peak_read_gbs);
      mem_write[id] = add(d.name + "/write", d.peak_write_gbs);
      if (d.peak_combined_gbs > 0)
        mem_combined[id] = add(d.name + "/combined", d.peak_combined_gbs);
    }
    for (LinkId id = 0; id < m.link_count(); ++id) {
      const LinkDesc& d = m.link(id);
      link_tx[id] = add(d.name + "/tx", d.peak_tx_gbs);
      link_rx[id] = add(d.name + "/rx", d.peak_rx_gbs);
      if (d.peak_combined_gbs > 0)
        link_combined[id] = add(d.name + "/combined", d.peak_combined_gbs);
    }
  }

  int add(std::string name, double cap) {
    resources.push_back(Resource{std::move(name), cap});
    return static_cast<int>(resources.size()) - 1;
  }
};

/// Per-flow traffic coefficients over counted bytes.
struct Coefficients {
  double mem_read = 0.0;   // bytes read from media per counted byte
  double mem_write = 0.0;  // bytes written to media per counted byte
  double to_core = 0.0;    // bytes flowing device->core per counted byte
  double from_core = 0.0;  // bytes flowing core->device per counted byte
};

Coefficients traffic_coefficients(const KernelTraffic& t, double llc_miss,
                                  double amplification) {
  const double scale = llc_miss * amplification;
  Coefficients c;
  const double rfo = t.write_allocate ? t.write_frac : 0.0;
  c.mem_read = (t.read_frac + rfo) * scale;
  c.mem_write = t.write_frac * scale;
  // Demand reads and RFOs pull lines toward the core; writebacks (or NT
  // stores) push lines away from it.
  c.to_core = (t.read_frac + rfo) * scale;
  c.from_core = t.write_frac * scale;
  return c;
}

}  // namespace

ModelResult BandwidthModel::solve(
    const std::vector<TrafficSpec>& specs) const {
  const Machine& m = *machine_;
  ResourceMap rmap(m);

  struct FlowState {
    Path path;
    Coefficients coeff;
    double total_traffic = 0.0;  // line movements per counted byte
    double idle_latency_ns = 0.0;
    double mlp_lines = 0.0;
    double software_factor = 1.0;
  };

  std::vector<FlowState> states;
  states.reserve(specs.size());
  std::vector<SolverFlow> flows;
  flows.reserve(specs.size());

  for (const TrafficSpec& s : specs) {
    FlowState st;
    const SocketId from = m.socket_of_core(s.core);
    st.path = resolve_route(m, from, s.memory);

    double llc_miss = 1.0;
    if (opts_.llc_filter && s.working_set_bytes > 0) {
      const double l3 = static_cast<double>(m.socket(from).l3_bytes);
      const double ws = static_cast<double>(s.working_set_bytes);
      llc_miss = 1.0 - std::min(opts_.llc_hit_max, l3 / ws);
    }
    double amp = s.traffic_amplification;
    if (st.path.crosses_upi(m)) amp *= opts_.remote_amplification;

    st.coeff = traffic_coefficients(s.traffic, llc_miss, amp);
    st.total_traffic = st.coeff.mem_read + st.coeff.mem_write;
    st.idle_latency_ns = st.path.latency_ns;
    st.mlp_lines =
        s.mlp_override > 0 ? s.mlp_override : m.socket(from).mlp_lines;
    st.software_factor = s.software_factor;

    SolverFlow f;
    // Pure-read or pure-write mixes leave some coefficients at zero; the
    // solver only accepts positive ones.
    const auto use = [&f](int resource, double coeff) {
      if (coeff > 0.0) f.usage.emplace_back(resource, coeff);
    };
    use(rmap.mem_read[s.memory], st.coeff.mem_read);
    use(rmap.mem_write[s.memory], st.coeff.mem_write);
    if (rmap.mem_combined[s.memory] >= 0)
      use(rmap.mem_combined[s.memory],
          st.coeff.mem_read + st.coeff.mem_write);
    for (const Hop& h : st.path.hops) {
      // Data toward the core travels rx when the request went tx (toward_b).
      const int toward_core =
          h.toward_b ? rmap.link_rx[h.link] : rmap.link_tx[h.link];
      const int from_core =
          h.toward_b ? rmap.link_tx[h.link] : rmap.link_rx[h.link];
      use(toward_core, st.coeff.to_core);
      use(from_core, st.coeff.from_core);
      if (rmap.link_combined[h.link] >= 0)
        use(rmap.link_combined[h.link],
            st.coeff.to_core + st.coeff.from_core);
    }
    flows.push_back(std::move(f));
    states.push_back(std::move(st));
  }

  // Concurrency-limit rate cap at a given latency: mlp lines in flight cover
  // `total_traffic` bytes of line movement per counted byte.
  const auto rate_cap = [](const FlowState& st, double latency_ns) {
    const double raw =
        st.mlp_lines * static_cast<double>(kCacheLineBytes) /
        (latency_ns * 1e-9) / kGB;  // GB/s of raw line traffic
    return st.software_factor * raw / std::max(st.total_traffic, 1e-12);
  };

  for (size_t i = 0; i < flows.size(); ++i)
    flows[i].rate_cap_gbs = rate_cap(states[i], states[i].idle_latency_ns);

  const Allocation alloc = max_min_fair(rmap.resources, flows);

  // Loaded latency is *reported* (the queueing bump a latency probe would
  // measure at this operating point) but never fed back into the caps: at
  // saturation the real system self-regulates so that latency x concurrency
  // equals exactly the fair share, which the solver already produced.
  std::vector<double> loaded_latency(specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    double rho = 0.0;
    if (opts_.loaded_latency) {
      for (auto [r, c] : flows[i].usage)
        rho = std::max(rho, alloc.utilization[r]);
    }
    loaded_latency[i] =
        opts_.latency.loaded_ns(states[i].idle_latency_ns, rho);
  }

  ModelResult out;
  out.resources = rmap.resources;
  out.utilization = alloc.utilization;
  out.flows.resize(specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    out.flows[i].rate_gbs = alloc.rates_gbs[i];
    out.flows[i].latency_ns = loaded_latency[i];
    out.flows[i].rate_cap_gbs = flows[i].rate_cap_gbs;
  }
  out.total_gbs = std::accumulate(
      out.flows.begin(), out.flows.end(), 0.0,
      [](double acc, const FlowResult& f) { return acc + f.rate_gbs; });
  return out;
}

}  // namespace cxlpmem::simkit
