// simkit/latency.hpp — loaded-latency model.
//
// Memory latency grows as the devices and links on the path fill up: queues
// build at the controller.  We use a bounded queueing bump
//
//     loaded = idle * (1 + alpha * rho^2 / (1 - min(rho, rho_max)))
//
// which is flat at low utilization, convex as rho -> 1, and capped so the
// two-pass solve in bwmodel stays stable.  alpha and rho_max are calibrated
// once (profiles.hpp) and shared by every path; the model's figure shapes are
// insensitive to their exact values because rate caps dominate the ramp and
// resource capacities dominate saturation.
#pragma once

#include <algorithm>

namespace cxlpmem::simkit {

struct LatencyModel {
  double alpha = 0.6;
  double rho_max = 0.92;

  /// Loaded round-trip latency for a path with idle latency `idle_ns` whose
  /// most-utilized resource sits at utilization `rho` in [0, 1].
  [[nodiscard]] double loaded_ns(double idle_ns, double rho) const noexcept {
    const double r = std::clamp(rho, 0.0, rho_max);
    return idle_ns * (1.0 + alpha * r * r / (1.0 - r));
  }
};

}  // namespace cxlpmem::simkit
