// simkit/route.hpp — path resolution from a requesting socket to a memory
// device.
//
// Paths are at most two hops in the machines this project models:
//   socket -> (same-socket IMC memory)                       : no links
//   socket -> UPI -> (other socket's IMC memory)             : one UPI hop
//   socket -> PCIe/CXL -> (link-attached memory)             : one CXL hop
//   socket -> UPI -> PCIe/CXL -> (link-attached memory)      : two hops
#pragma once

#include <vector>

#include "simkit/topology.hpp"
#include "simkit/types.hpp"

namespace cxlpmem::simkit {

/// One link traversal.  `toward_b` is true when request traffic flows in the
/// link's A->B (tx) direction; data returns travel the opposite direction.
struct Hop {
  LinkId link = kInvalidId;
  bool toward_b = true;
};

/// A resolved route.  `latency_ns` is the full load-to-use round trip: the
/// target memory's idle latency plus every traversed link's latency adder.
struct Path {
  MemoryId memory = kInvalidId;
  std::vector<Hop> hops;
  double latency_ns = 0.0;

  /// True when the path crosses a socket-to-socket (UPI) link.  Such flows
  /// pay the remote-traffic amplification in the bandwidth model.
  [[nodiscard]] bool crosses_upi(const Machine& m) const {
    for (const Hop& h : hops)
      if (m.link(h.link).kind == LinkKind::Upi) return true;
    return false;
  }

  /// True when the path crosses a CXL link.
  [[nodiscard]] bool crosses_cxl(const Machine& m) const {
    for (const Hop& h : hops)
      if (m.link(h.link).kind == LinkKind::PcieCxl) return true;
    return false;
  }
};

/// Resolves the route from `from` (a socket) to memory device `to`.
/// Throws std::runtime_error when the machine provides no route (e.g. the
/// CXL link hangs off a different socket with no UPI between them).
[[nodiscard]] Path resolve_route(const Machine& machine, SocketId from,
                                 MemoryId to);

}  // namespace cxlpmem::simkit
