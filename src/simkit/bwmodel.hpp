// simkit/bwmodel.hpp — the bandwidth model: turns (machine, set of memory
// traffic flows) into per-flow sustained bandwidths.
//
// Two effects govern streaming bandwidth on real machines, and the model
// reproduces exactly these two:
//
//  1. *Per-core concurrency limit*: a core sustains at most
//         mlp_lines * 64 B / round_trip_latency
//     bytes/s of memory traffic (line-fill-buffer bound).  This shapes the
//     thread-count ramp in every figure.
//  2. *Shared-resource saturation*: DRAM devices, UPI links and the CXL
//     link/controller have finite capacities shared max-min fairly between
//     flows.  This shapes the plateaus and the close/spread affinity kinks.
//
// A second solver pass feeds resource utilization back into latency (queueing
// bump), softening the knee between the two regimes.
#pragma once

#include <cstdint>
#include <vector>

#include "simkit/latency.hpp"
#include "simkit/route.hpp"
#include "simkit/topology.hpp"
#include "simkit/types.hpp"
#include "simkit/waterfill.hpp"

namespace cxlpmem::simkit {

/// Traffic mix of one benchmark kernel, expressed over *counted* bytes (the
/// bytes STREAM reports).  read_frac + write_frac == 1.
struct KernelTraffic {
  double read_frac = 0.5;
  double write_frac = 0.5;
  /// Regular (allocating) stores read the line before writing it (RFO), so a
  /// counted write moves the line twice.  Non-temporal stores skip the RFO.
  bool write_allocate = true;
};

/// Pre-defined STREAM kernel mixes.
namespace kernel_traffic {
inline constexpr KernelTraffic kCopy{.read_frac = 0.5, .write_frac = 0.5};
inline constexpr KernelTraffic kScale{.read_frac = 0.5, .write_frac = 0.5};
inline constexpr KernelTraffic kAdd{.read_frac = 2.0 / 3.0,
                                    .write_frac = 1.0 / 3.0};
inline constexpr KernelTraffic kTriad{.read_frac = 2.0 / 3.0,
                                      .write_frac = 1.0 / 3.0};
}  // namespace kernel_traffic

/// One thread's worth of traffic against one memory device.
struct TrafficSpec {
  CoreId core = 0;
  MemoryId memory = 0;
  KernelTraffic traffic;
  /// Multiplier < 1 on the achievable per-flow rate modelling software path
  /// cost (PMDK object indirection + persist barriers).  The App-Direct runs
  /// use the calibrated PMDK factor; raw CC-NUMA runs use 1.0.
  double software_factor = 1.0;
  /// Extra traffic per counted byte (flush-induced rewrites etc.).
  double traffic_amplification = 1.0;
  /// Bytes the kernel streams over (all arrays); feeds the LLC filter.
  std::uint64_t working_set_bytes = 0;
  /// Overrides the socket's memory-level parallelism for this flow (>0).
  /// Latency-bound workloads: 1 = pure pointer chasing, small values =
  /// GUPS-style random access with limited outstanding misses.
  double mlp_override = 0.0;
};

struct ModelOptions {
  /// Report queueing-bumped latencies in FlowResult::latency_ns.  Rate caps
  /// always use idle latency: at saturation the machine self-regulates, so
  /// feeding loaded latency back into the caps would double-count contention.
  bool loaded_latency = true;
  /// Traffic amplification for flows crossing a UPI link: directory/snoop
  /// overhead and lost DRAM page locality of interleaved remote streams.
  double remote_amplification = 1.08;
  /// LLC filter: a streaming working set of W bytes against an L3 of C bytes
  /// hits for ~min(hit_max, C/W) of its traffic.
  bool llc_filter = true;
  double llc_hit_max = 0.10;
  LatencyModel latency;
};

struct FlowResult {
  double rate_gbs = 0.0;      ///< counted (STREAM-reported) bandwidth
  double latency_ns = 0.0;    ///< loaded round-trip latency used for the cap
  double rate_cap_gbs = 0.0;  ///< the concurrency-limit cap applied
};

struct ModelResult {
  std::vector<FlowResult> flows;
  double total_gbs = 0.0;
  /// Utilization of each internal resource, for diagnostics/ablations.
  std::vector<Resource> resources;
  std::vector<double> utilization;
};

/// Solves the bandwidth allocation for a set of concurrent flows.
/// Deterministic: same machine + specs => same result, on any host.
class BandwidthModel {
 public:
  explicit BandwidthModel(const Machine& machine, ModelOptions opts = {})
      : machine_(&machine), opts_(opts) {}

  [[nodiscard]] ModelResult solve(
      const std::vector<TrafficSpec>& specs) const;

  [[nodiscard]] const ModelOptions& options() const noexcept { return opts_; }

 private:
  const Machine* machine_;
  ModelOptions opts_;
};

}  // namespace cxlpmem::simkit
