// simkit/topology.hpp — the machine description the bandwidth model runs on.
//
// A Machine is a static datastructure: sockets containing cores, memory
// devices attached either to a socket's integrated memory controller or to
// the end of a link chain (CXL), and links connecting sockets to each other
// (UPI) and to off-socket devices (PCIe/CXL).  It is deliberately a plain
// description; all behaviour lives in route.hpp / bwmodel.hpp.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "simkit/types.hpp"

namespace cxlpmem::simkit {

/// A CPU socket.  `mlp_lines` is the per-core memory-level parallelism
/// (sustained outstanding cachelines, LFB-bound); `l3_bytes` feeds the
/// streaming cache-filter model.
struct SocketDesc {
  std::string name;
  int cores = 0;
  double mlp_lines = 10.0;
  std::uint64_t l3_bytes = 0;
  double base_freq_ghz = 2.0;
};

/// A memory device (a DIMM set behind one controller, or a CXL expander's
/// media).  Peak bandwidths are *realizable* stream bandwidths of the media,
/// i.e. pin rate times a media efficiency — the solver treats them as hard
/// capacities.
struct MemoryDesc {
  std::string name;
  MemoryKind kind = MemoryKind::DramDdr4;
  /// Socket whose IMC hosts the device, or kInvalidId when the device is
  /// reached through links (CXL / off-node).
  SocketId home_socket = kInvalidId;
  double peak_read_gbs = 0.0;
  double peak_write_gbs = 0.0;
  /// Optional cap on read+write together, modelling a device controller
  /// that saturates below the sum of its media channels (the paper's FPGA
  /// soft IP).  Shared by every head of a multi-headed device.  0 = none.
  double peak_combined_gbs = 0.0;
  double idle_latency_ns = 100.0;
  std::uint64_t capacity_bytes = 0;
  /// True when the device sits in a persistence domain (battery/ADR): stores
  /// that reach it survive crashes.  Consumed by core/persist_domain.
  bool persistent = false;
};

/// A directional-pair interconnect link.  Capacities are per direction
/// (full duplex), already de-rated by protocol efficiency.
struct LinkDesc {
  std::string name;
  LinkKind kind = LinkKind::Upi;
  SocketId a = kInvalidId;  ///< endpoint A: always a socket
  /// Endpoint B: a socket (UPI) — or kInvalidId when the link leads to
  /// link-attached memory devices (CXL endpoints enumerate via `attached`).
  SocketId b = kInvalidId;
  double peak_tx_gbs = 0.0;  ///< A -> B direction
  double peak_rx_gbs = 0.0;  ///< B -> A direction
  /// Optional cap on tx+rx together.  Models endpoints whose controller
  /// saturates below the wire rate (the paper's FPGA soft IP).  0 = no cap.
  double peak_combined_gbs = 0.0;
  double latency_ns = 0.0;  ///< added round-trip latency per traversal
  /// Memory devices reachable through this link (CXL expanders).
  std::vector<MemoryId> attached;
};

/// Immutable machine model.  Build once via the fluent adders, then hand to
/// the routing/bandwidth layers.  Throws std::invalid_argument on
/// inconsistent wiring, so a constructed Machine is always routable.
class Machine {
 public:
  Machine() = default;

  SocketId add_socket(SocketDesc s) {
    if (s.cores <= 0) throw std::invalid_argument("socket needs cores");
    const SocketId id = static_cast<SocketId>(sockets_.size());
    for (int c = 0; c < s.cores; ++c) {
      core_socket_.push_back(id);
    }
    sockets_.push_back(std::move(s));
    return id;
  }

  MemoryId add_memory(MemoryDesc m) {
    if (m.peak_read_gbs <= 0 || m.peak_write_gbs <= 0)
      throw std::invalid_argument("memory needs positive peak bandwidth");
    if (m.home_socket != kInvalidId) validate_socket(m.home_socket);
    const MemoryId id = static_cast<MemoryId>(memories_.size());
    memories_.push_back(std::move(m));
    return id;
  }

  LinkId add_link(LinkDesc l) {
    validate_socket(l.a);
    if (l.b != kInvalidId) validate_socket(l.b);
    for (MemoryId m : l.attached) {
      validate_memory(m);
      if (memories_[m].home_socket != kInvalidId)
        throw std::invalid_argument(
            "link-attached memory must not have a home socket");
    }
    if (l.b == kInvalidId && l.attached.empty())
      throw std::invalid_argument("dangling link: no socket, no memory");
    const LinkId id = static_cast<LinkId>(links_.size());
    links_.push_back(std::move(l));
    return id;
  }

  [[nodiscard]] int socket_count() const noexcept {
    return static_cast<int>(sockets_.size());
  }
  [[nodiscard]] int core_count() const noexcept {
    return static_cast<int>(core_socket_.size());
  }
  [[nodiscard]] int memory_count() const noexcept {
    return static_cast<int>(memories_.size());
  }
  [[nodiscard]] int link_count() const noexcept {
    return static_cast<int>(links_.size());
  }

  [[nodiscard]] const SocketDesc& socket(SocketId s) const {
    validate_socket(s);
    return sockets_[s];
  }
  [[nodiscard]] const MemoryDesc& memory(MemoryId m) const {
    validate_memory(m);
    return memories_[m];
  }
  [[nodiscard]] const LinkDesc& link(LinkId l) const {
    validate_link(l);
    return links_[l];
  }

  /// Socket that owns core `c`.  Cores are numbered socket-major: socket 0
  /// holds cores [0, n0), socket 1 holds [n0, n0+n1), ... — matching how the
  /// paper's setups expose cores 0-9 / 10-19.
  [[nodiscard]] SocketId socket_of_core(CoreId c) const {
    if (c < 0 || c >= core_count())
      throw std::out_of_range("core id out of range");
    return core_socket_[c];
  }

  /// All core ids belonging to socket `s`, ascending.
  [[nodiscard]] std::vector<CoreId> cores_of_socket(SocketId s) const {
    validate_socket(s);
    std::vector<CoreId> out;
    for (CoreId c = 0; c < core_count(); ++c)
      if (core_socket_[c] == s) out.push_back(c);
    return out;
  }

  /// Memory devices homed on socket `s` (IMC-attached).
  [[nodiscard]] std::vector<MemoryId> memories_of_socket(SocketId s) const {
    validate_socket(s);
    std::vector<MemoryId> out;
    for (MemoryId m = 0; m < memory_count(); ++m)
      if (memories_[m].home_socket == s) out.push_back(m);
    return out;
  }

  /// The link through which link-attached memory `m` is reached, or
  /// kInvalidId for IMC-attached memory.  A multi-headed device may be
  /// reachable through several links; this returns the first.
  [[nodiscard]] LinkId link_of_memory(MemoryId m) const {
    const auto links = links_of_memory(m);
    return links.empty() ? kInvalidId : links.front();
  }

  /// Every link attaching memory `m` (multi-headed devices have several).
  [[nodiscard]] std::vector<LinkId> links_of_memory(MemoryId m) const {
    validate_memory(m);
    std::vector<LinkId> out;
    for (LinkId l = 0; l < link_count(); ++l)
      for (MemoryId a : links_[l].attached)
        if (a == m) out.push_back(l);
    return out;
  }

  /// The UPI link between sockets `a` and `b`, or kInvalidId.
  [[nodiscard]] LinkId socket_link(SocketId a, SocketId b) const {
    validate_socket(a);
    validate_socket(b);
    for (LinkId l = 0; l < link_count(); ++l) {
      const LinkDesc& d = links_[l];
      if (d.b == kInvalidId) continue;
      if ((d.a == a && d.b == b) || (d.a == b && d.b == a)) return l;
    }
    return kInvalidId;
  }

 private:
  void validate_socket(SocketId s) const {
    if (s < 0 || s >= socket_count())
      throw std::out_of_range("socket id out of range");
  }
  void validate_memory(MemoryId m) const {
    if (m < 0 || m >= memory_count())
      throw std::out_of_range("memory id out of range");
  }
  void validate_link(LinkId l) const {
    if (l < 0 || l >= link_count())
      throw std::out_of_range("link id out of range");
  }

  std::vector<SocketDesc> sockets_;
  std::vector<MemoryDesc> memories_;
  std::vector<LinkDesc> links_;
  std::vector<SocketId> core_socket_;
};

/// Flattened performance/identity summary of one memory device as seen from
/// software: media peaks, load-to-use latency *including* the link for
/// link-attached devices, and how the device is reached.  This is the
/// profile a MemorySpace handle carries up through the api facade so pool
/// users can reason about the backend they were bound to.
struct MemoryProfile {
  std::string name;
  MemoryKind kind = MemoryKind::DramDdr4;
  bool link_attached = false;  ///< reached through a CXL/PCIe link
  double peak_read_gbs = 0.0;
  double peak_write_gbs = 0.0;
  double peak_combined_gbs = 0.0;  ///< 0 = no combined ceiling
  double idle_latency_ns = 0.0;    ///< media + link traversal
  std::uint64_t capacity_bytes = 0;
  bool persistent = false;
};

/// Builds the profile of memory `m`, folding the first attaching link's
/// latency and combined ceiling into the media numbers.
[[nodiscard]] inline MemoryProfile profile_of(const Machine& machine,
                                              MemoryId m) {
  const MemoryDesc& mem = machine.memory(m);
  MemoryProfile p;
  p.name = mem.name;
  p.kind = mem.kind;
  p.link_attached = mem.home_socket == kInvalidId;
  p.peak_read_gbs = mem.peak_read_gbs;
  p.peak_write_gbs = mem.peak_write_gbs;
  p.peak_combined_gbs = mem.peak_combined_gbs;
  p.idle_latency_ns = mem.idle_latency_ns;
  p.capacity_bytes = mem.capacity_bytes;
  p.persistent = mem.persistent;
  if (p.link_attached) {
    const LinkId l = machine.link_of_memory(m);
    if (l != kInvalidId) {
      const LinkDesc& link = machine.link(l);
      p.idle_latency_ns += link.latency_ns;
      if (link.peak_combined_gbs > 0.0 &&
          (p.peak_combined_gbs == 0.0 ||
           link.peak_combined_gbs < p.peak_combined_gbs))
        p.peak_combined_gbs = link.peak_combined_gbs;
    }
  }
  return p;
}

}  // namespace cxlpmem::simkit
