#include "simkit/route.hpp"

#include <stdexcept>

namespace cxlpmem::simkit {

namespace {

/// Hop across the UPI link between two sockets, oriented from `from`.
Hop upi_hop(const Machine& m, SocketId from, SocketId to) {
  const LinkId l = m.socket_link(from, to);
  if (l == kInvalidId)
    throw std::runtime_error("no UPI link between requested sockets");
  return Hop{.link = l, .toward_b = m.link(l).a == from};
}

}  // namespace

Path resolve_route(const Machine& machine, SocketId from, MemoryId to) {
  const MemoryDesc& mem = machine.memory(to);
  Path path;
  path.memory = to;
  path.latency_ns = mem.idle_latency_ns;

  if (mem.home_socket != kInvalidId) {
    // IMC-attached memory: local, or one UPI hop.
    if (mem.home_socket != from) {
      const Hop h = upi_hop(machine, from, mem.home_socket);
      path.hops.push_back(h);
      path.latency_ns += machine.link(h.link).latency_ns;
    }
    return path;
  }

  // Link-attached (CXL) memory: multi-headed devices expose one link per
  // head — take the head rooted at the requesting socket when it exists,
  // otherwise reach the first head's root over UPI.
  const auto links = machine.links_of_memory(to);
  if (links.empty())
    throw std::runtime_error("memory is neither IMC- nor link-attached");
  LinkId cxl = links.front();
  for (const LinkId l : links)
    if (machine.link(l).a == from) cxl = l;
  const SocketId root = machine.link(cxl).a;
  if (root != from) {
    const Hop h = upi_hop(machine, from, root);
    path.hops.push_back(h);
    path.latency_ns += machine.link(h.link).latency_ns;
  }
  // Requests always travel A->B on a device link (the socket is endpoint A).
  path.hops.push_back(Hop{.link = cxl, .toward_b = true});
  path.latency_ns += machine.link(cxl).latency_ns;
  return path;
}

}  // namespace cxlpmem::simkit
