#include "simkit/profiles.hpp"

namespace cxlpmem::simkit::profiles {

namespace {

SocketDesc spr_socket(const std::string& name) {
  return SocketDesc{.name = name,
                    .cores = 10,
                    .mlp_lines = kSprMlpLines,
                    .l3_bytes = kSprL3Bytes,
                    .base_freq_ghz = 2.1};
}

SocketDesc gold_socket(const std::string& name) {
  return SocketDesc{.name = name,
                    .cores = 10,
                    .mlp_lines = kGoldMlpLines,
                    .l3_bytes = kGoldL3Bytes,
                    .base_freq_ghz = 2.5};
}

MemoryDesc ddr5_dimm(const std::string& name, SocketId home) {
  return MemoryDesc{.name = name,
                    .kind = MemoryKind::DramDdr5,
                    .home_socket = home,
                    .peak_read_gbs = kDdr5ReadGbs,
                    .peak_write_gbs = kDdr5WriteGbs,
                    .idle_latency_ns = kDdr5IdleLatencyNs,
                    .capacity_bytes = 64ull << 30,
                    .persistent = false};
}

MemoryDesc gold_ddr4(const std::string& name, SocketId home) {
  return MemoryDesc{.name = name,
                    .kind = MemoryKind::DramDdr4,
                    .home_socket = home,
                    .peak_read_gbs = kGoldDdr4ReadGbs,
                    .peak_write_gbs = kGoldDdr4WriteGbs,
                    .idle_latency_ns = kGoldDdr4IdleLatencyNs,
                    .capacity_bytes = 96ull << 30,
                    .persistent = false};
}

MemoryDesc cxl_fpga_media(SocketId home) {
  return MemoryDesc{.name = "cxl-fpga-ddr4",
                    .kind = MemoryKind::CxlExpander,
                    .home_socket = home,
                    .peak_read_gbs = kCxlFpgaReadGbs,
                    .peak_write_gbs = kCxlFpgaWriteGbs,
                    // The soft-IP controller is a device-level ceiling,
                    // shared by every head of a multi-headed exposure.
                    .peak_combined_gbs = kCxlFpgaCombinedGbs,
                    .idle_latency_ns = kCxlFpgaIdleLatencyNs,
                    .capacity_bytes = 16ull << 30,
                    // Battery-backed per paper §1.4: the device is a
                    // persistence domain.
                    .persistent = true};
}

}  // namespace

SetupOne make_setup_one() {
  SetupOne s;
  s.socket0 = s.machine.add_socket(spr_socket("spr-socket0"));
  s.socket1 = s.machine.add_socket(spr_socket("spr-socket1"));
  s.ddr5_socket0 = s.machine.add_memory(ddr5_dimm("ddr5-s0", s.socket0));
  s.ddr5_socket1 = s.machine.add_memory(ddr5_dimm("ddr5-s1", s.socket1));
  s.cxl = s.machine.add_memory(cxl_fpga_media(kInvalidId));
  s.upi = s.machine.add_link(LinkDesc{.name = "upi",
                                      .kind = LinkKind::Upi,
                                      .a = s.socket0,
                                      .b = s.socket1,
                                      .peak_tx_gbs = kSprUpiGbs,
                                      .peak_rx_gbs = kSprUpiGbs,
                                      .latency_ns = kSprUpiLatencyNs,
                                      .attached = {}});
  s.cxl_link =
      s.machine.add_link(LinkDesc{.name = "pcie5x16-cxl",
                                  .kind = LinkKind::PcieCxl,
                                  .a = s.socket0,
                                  .b = kInvalidId,
                                  .peak_tx_gbs = kCxlLinkDirGbs,
                                  .peak_rx_gbs = kCxlLinkDirGbs,
                                  .latency_ns = kCxlLinkLatencyNs,
                                  .attached = {s.cxl}});
  return s;
}

SetupOne make_setup_one_media_on_imc() {
  SetupOne s;
  s.socket0 = s.machine.add_socket(spr_socket("spr-socket0"));
  s.socket1 = s.machine.add_socket(spr_socket("spr-socket1"));
  s.ddr5_socket0 = s.machine.add_memory(ddr5_dimm("ddr5-s0", s.socket0));
  s.ddr5_socket1 = s.machine.add_memory(ddr5_dimm("ddr5-s1", s.socket1));
  // Identical media, directly on socket0's IMC at DRAM-class latency: what
  // the DDR4 modules would do without the CXL fabric (link + soft-IP
  // controller) in front of them.
  MemoryDesc media = cxl_fpga_media(s.socket0);
  media.name = "ddr4-on-imc";
  media.idle_latency_ns = kGoldDdr4IdleLatencyNs;
  media.peak_combined_gbs = 0.0;  // the soft IP is part of the ablated fabric
  s.cxl = s.machine.add_memory(media);
  s.upi = s.machine.add_link(LinkDesc{.name = "upi",
                                      .kind = LinkKind::Upi,
                                      .a = s.socket0,
                                      .b = s.socket1,
                                      .peak_tx_gbs = kSprUpiGbs,
                                      .peak_rx_gbs = kSprUpiGbs,
                                      .latency_ns = kSprUpiLatencyNs,
                                      .attached = {}});
  s.cxl_link = kInvalidId;
  return s;
}

SetupTwo make_setup_two() {
  SetupTwo s;
  s.socket0 = s.machine.add_socket(gold_socket("gold-socket0"));
  s.socket1 = s.machine.add_socket(gold_socket("gold-socket1"));
  s.ddr4_socket0 = s.machine.add_memory(gold_ddr4("ddr4-s0", s.socket0));
  s.ddr4_socket1 = s.machine.add_memory(gold_ddr4("ddr4-s1", s.socket1));
  s.upi = s.machine.add_link(LinkDesc{.name = "upi",
                                      .kind = LinkKind::Upi,
                                      .a = s.socket0,
                                      .b = s.socket1,
                                      .peak_tx_gbs = kGoldUpiGbs,
                                      .peak_rx_gbs = kGoldUpiGbs,
                                      .latency_ns = kGoldUpiLatencyNs,
                                      .attached = {}});
  return s;
}

SetupOne make_setup_one_with_media(CxlMediaKind media) {
  // Build from scratch with swapped media parameters (Machine is immutable
  // by design).
  SetupOne out;
  out.socket0 = out.machine.add_socket(spr_socket("spr-socket0"));
  out.socket1 = out.machine.add_socket(spr_socket("spr-socket1"));
  out.ddr5_socket0 =
      out.machine.add_memory(ddr5_dimm("ddr5-s0", out.socket0));
  out.ddr5_socket1 =
      out.machine.add_memory(ddr5_dimm("ddr5-s1", out.socket1));

  MemoryDesc m = cxl_fpga_media(kInvalidId);
  switch (media) {
    case CxlMediaKind::Ddr4Fpga:
      break;  // the paper's prototype, as calibrated
    case CxlMediaKind::Ddr5Asic:
      // One DDR5-4800 channel behind a production ASIC: media at DIMM
      // rates, no soft-IP ceiling, ASIC-class latency.
      m.name = "cxl-ddr5";
      m.peak_read_gbs = kDdr5ReadGbs;
      m.peak_write_gbs = kDdr5WriteGbs;
      m.peak_combined_gbs = 0.0;
      m.idle_latency_ns = 140.0;  // device-side; +link = ~250 ns total
      m.capacity_bytes = 64ull << 30;
      break;
    case CxlMediaKind::DcpmmAsic:
      // Optane media behind CXL: published DCPMM ceilings + media latency.
      m.name = "cxl-dcpmm";
      m.kind = MemoryKind::Dcpmm;
      m.peak_read_gbs = kDcpmmReadGbs;
      m.peak_write_gbs = kDcpmmWriteGbs;
      m.peak_combined_gbs = 0.0;
      m.idle_latency_ns = kDcpmmIdleLatencyNs;
      m.capacity_bytes = 128ull << 30;
      break;
  }
  out.cxl = out.machine.add_memory(m);
  out.upi = out.machine.add_link(LinkDesc{.name = "upi",
                                          .kind = LinkKind::Upi,
                                          .a = out.socket0,
                                          .b = out.socket1,
                                          .peak_tx_gbs = kSprUpiGbs,
                                          .peak_rx_gbs = kSprUpiGbs,
                                          .latency_ns = kSprUpiLatencyNs,
                                          .attached = {}});
  out.cxl_link =
      out.machine.add_link(LinkDesc{.name = "pcie5x16-cxl",
                                    .kind = LinkKind::PcieCxl,
                                    .a = out.socket0,
                                    .b = kInvalidId,
                                    .peak_tx_gbs = kCxlLinkDirGbs,
                                    .peak_rx_gbs = kCxlLinkDirGbs,
                                    .latency_ns = kCxlLinkLatencyNs,
                                    .attached = {out.cxl}});
  return out;
}

MultiHostSetup make_multihost_setup(int hosts) {
  if (hosts < 1 || hosts > 8)
    throw std::invalid_argument("1..8 hosts supported");
  MultiHostSetup s;
  s.shared_cxl = kInvalidId;
  for (int h = 0; h < hosts; ++h) {
    const SocketId sock =
        s.machine.add_socket(spr_socket("host" + std::to_string(h)));
    s.hosts.push_back(sock);
    s.host_dram.push_back(
        s.machine.add_memory(ddr5_dimm("ddr5-h" + std::to_string(h), sock)));
  }
  s.shared_cxl = s.machine.add_memory(cxl_fpga_media(kInvalidId));
  for (int h = 0; h < hosts; ++h) {
    s.head_links.push_back(s.machine.add_link(
        LinkDesc{.name = "cxl-head" + std::to_string(h),
                 .kind = LinkKind::PcieCxl,
                 .a = s.hosts[h],
                 .b = kInvalidId,
                 .peak_tx_gbs = kCxlLinkDirGbs,
                 .peak_rx_gbs = kCxlLinkDirGbs,
                 .latency_ns = kCxlLinkLatencyNs,
                 .attached = {s.shared_cxl}}));
  }
  return s;
}

LegacySetup make_legacy_setup() {
  LegacySetup s;
  s.socket0 = s.machine.add_socket(gold_socket("legacy-socket0"));
  s.socket1 = s.machine.add_socket(gold_socket("legacy-socket1"));
  s.ddr4_socket0 = s.machine.add_memory(gold_ddr4("ddr4-s0", s.socket0));
  s.ddr4_socket1 = s.machine.add_memory(gold_ddr4("ddr4-s1", s.socket1));
  s.dcpmm = s.machine.add_memory(
      MemoryDesc{.name = "dcpmm-s0",
                 .kind = MemoryKind::Dcpmm,
                 .home_socket = s.socket0,
                 .peak_read_gbs = kDcpmmReadGbs,
                 .peak_write_gbs = kDcpmmWriteGbs,
                 .idle_latency_ns = kDcpmmIdleLatencyNs,
                 .capacity_bytes = 128ull << 30,
                 .persistent = true});
  s.upi = s.machine.add_link(LinkDesc{.name = "upi",
                                      .kind = LinkKind::Upi,
                                      .a = s.socket0,
                                      .b = s.socket1,
                                      .peak_tx_gbs = kGoldUpiGbs,
                                      .peak_rx_gbs = kGoldUpiGbs,
                                      .latency_ns = kGoldUpiLatencyNs,
                                      .attached = {}});
  return s;
}

}  // namespace cxlpmem::simkit::profiles
