// simkit/types.hpp — fundamental identifiers and units for the machine
// performance model.
//
// Conventions (used across the whole project):
//   * bandwidth is in decimal GB/s (1e9 bytes/second), matching STREAM's
//     reporting convention;
//   * latency is in nanoseconds;
//   * capacities/sizes are in bytes.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

namespace cxlpmem::simkit {

/// Index of a CPU core within a Machine (dense, 0-based).
using CoreId = int;
/// Index of a socket within a Machine (dense, 0-based).
using SocketId = int;
/// Index of a memory device within a Machine (dense, 0-based).
using MemoryId = int;
/// Index of an interconnect link within a Machine (dense, 0-based).
using LinkId = int;

inline constexpr int kInvalidId = -1;

/// Bytes per cacheline on every modelled host (x86).
inline constexpr std::uint64_t kCacheLineBytes = 64;

/// One decimal gigabyte, the STREAM reporting unit.
inline constexpr double kGB = 1.0e9;

/// Converts a DDR transfer rate (MT/s) and channel count into a peak pin
/// bandwidth in GB/s (8 bytes per transfer per channel).
[[nodiscard]] constexpr double ddr_peak_gbs(double mega_transfers_per_s,
                                            int channels) noexcept {
  return mega_transfers_per_s * 1.0e6 * 8.0 * channels / kGB;
}

/// Converts a PCIe/UPI style serial rate into raw GB/s per direction:
/// giga-transfers/s times lane count, one bit per transfer per lane.
[[nodiscard]] constexpr double serial_peak_gbs(double giga_transfers_per_s,
                                               int lanes) noexcept {
  return giga_transfers_per_s * lanes / 8.0;
}

/// The kinds of memory media the model distinguishes.  The kind never changes
/// solver behaviour by itself — it selects default parameters and is used for
/// reporting.
enum class MemoryKind {
  DramDdr4,
  DramDdr5,
  CxlExpander,  ///< CXL Type-3 device memory (any media behind the link)
  Dcpmm,        ///< Intel Optane DC Persistent Memory (published baseline)
};

[[nodiscard]] inline std::string to_string(MemoryKind k) {
  switch (k) {
    case MemoryKind::DramDdr4: return "ddr4";
    case MemoryKind::DramDdr5: return "ddr5";
    case MemoryKind::CxlExpander: return "cxl";
    case MemoryKind::Dcpmm: return "dcpmm";
  }
  return "?";
}

/// The kinds of interconnect link the model distinguishes.
enum class LinkKind {
  Upi,      ///< socket-to-socket coherent interconnect
  PcieCxl,  ///< PCIe physical layer carrying CXL.io/.mem
};

[[nodiscard]] inline std::string to_string(LinkKind k) {
  switch (k) {
    case LinkKind::Upi: return "upi";
    case LinkKind::PcieCxl: return "pcie-cxl";
  }
  return "?";
}

inline constexpr double kUnbounded = std::numeric_limits<double>::infinity();

}  // namespace cxlpmem::simkit
