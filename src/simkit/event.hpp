// simkit/event.hpp — minimal deterministic discrete-event simulator.
//
// cxlsim uses this to model CXL transactions at flit granularity (request /
// data / response messages with link occupancy), which validates the analytic
// link-efficiency constants used by the bandwidth model.  Determinism:
// simultaneous events fire in scheduling order (monotonic sequence number
// breaks time ties).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace cxlpmem::simkit {

class Simulator {
 public:
  using Action = std::function<void()>;

  /// Current simulated time in nanoseconds.
  [[nodiscard]] double now() const noexcept { return now_ns_; }

  /// Schedules `action` to run `delay_ns >= 0` after the current time.
  void schedule(double delay_ns, Action action) {
    schedule_at(now_ns_ + delay_ns, std::move(action));
  }

  /// Schedules `action` at absolute time `time_ns` (>= now).
  void schedule_at(double time_ns, Action action) {
    if (time_ns < now_ns_) time_ns = now_ns_;
    queue_.push(Event{time_ns, next_seq_++, std::move(action)});
  }

  /// Runs until the event queue drains.  Returns the number of events fired.
  std::uint64_t run() {
    std::uint64_t fired = 0;
    while (!queue_.empty()) {
      fired += step();
    }
    return fired;
  }

  /// Runs events with time <= `until_ns`; leaves later events queued and
  /// advances now() to `until_ns`.  Returns the number of events fired.
  std::uint64_t run_until(double until_ns) {
    std::uint64_t fired = 0;
    while (!queue_.empty() && queue_.top().time_ns <= until_ns) {
      fired += step();
    }
    if (now_ns_ < until_ns) now_ns_ = until_ns;
    return fired;
  }

  [[nodiscard]] bool empty() const noexcept { return queue_.empty(); }
  [[nodiscard]] std::size_t pending() const noexcept { return queue_.size(); }

 private:
  struct Event {
    double time_ns;
    std::uint64_t seq;
    Action action;
    bool operator>(const Event& o) const noexcept {
      if (time_ns != o.time_ns) return time_ns > o.time_ns;
      return seq > o.seq;
    }
  };

  std::uint64_t step() {
    // Moving the event out before firing lets actions schedule freely.
    Event e = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ns_ = e.time_ns;
    e.action();
    return 1;
  }

  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  double now_ns_ = 0.0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace cxlpmem::simkit
