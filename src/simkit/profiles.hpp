// simkit/profiles.hpp — calibrated machine models for the paper's two
// physical setups, plus the published-baseline device profiles.
//
// Every constant is a model *input* documented here once; DESIGN.md §5
// explains the calibration.  Sources:
//   * Setup #1 / #2 hardware: paper §2.1, Figures 2 and 3.
//   * CXL FPGA prototype (Agilex 7, R-Tile, 2x DDR4-1333 8 GB): paper §2.2.
//   * Realizable fractions: calibrated so the model lands on the paper's
//     reported plateaus (C1-C9 in DESIGN.md §1).
//   * DCPMM read 6.6 / write 2.3 GB/s per DIMM: paper §1.4 citing [26].
//
// NOTE on Setup #2 DRAM: the paper's text lists 6 channels of DDR4-2666 per
// socket, but the measured curves (Figs 5e-8e) converge with the ~12 GB/s
// CXL-DDR4 device, implying a much lower realizable socket bandwidth in the
// actual runs.  We calibrate the model to the *figures* (single-DIMM-class
// realizable bandwidth) and record the discrepancy in EXPERIMENTS.md.
#pragma once

#include "simkit/topology.hpp"
#include "simkit/types.hpp"

namespace cxlpmem::simkit::profiles {

/// Software-path derating for PMDK-style App-Direct access (object
/// indirection + persist barriers).  Paper §4 Class 2.(a): "PMDK overheads
/// over CC-NUMA are 10%-15%"; we use 12%.
inline constexpr double kPmdkSoftwareFactor = 0.88;

/// STREAM working-set: 100 M doubles per array, three arrays (paper §3.2).
inline constexpr std::uint64_t kStreamArrayElements = 100'000'000;
inline constexpr std::uint64_t kStreamWorkingSetBytes =
    3 * kStreamArrayElements * sizeof(double);

// ---------------------------------------------------------------------------
// Setup #1 — 2x Intel Xeon 4th-gen (Sapphire Rapids), 10 cores/socket after
// the BIOS limit, one 64 GB DDR5-4800 DIMM per socket, CXL FPGA prototype.
// ---------------------------------------------------------------------------

/// One DDR5-4800 DIMM: 38.4 GB/s pin; STREAM-realizable read 0.65 / write
/// 0.57 of pin.
inline constexpr double kDdr5ReadGbs = 24.5;
inline constexpr double kDdr5WriteGbs = 21.5;
inline constexpr double kDdr5IdleLatencyNs = 95.0;

/// SPR UPI: 3 links x 16 GT/s; STREAM-realizable per direction.
inline constexpr double kSprUpiGbs = 19.0;
inline constexpr double kSprUpiLatencyNs = 45.0;

/// Per-core sustained outstanding cachelines (line fill buffers + deeper
/// SPR uncore queues).
inline constexpr double kSprMlpLines = 16.0;
inline constexpr std::uint64_t kSprL3Bytes = 60ull << 20;

/// FPGA prototype media: 2x DDR4-1333 8 GB = 21.3 GB/s pin; soft-IP memory
/// controller realizes ~0.63 read / 0.56 write.
inline constexpr double kCxlFpgaReadGbs = 13.5;
inline constexpr double kCxlFpgaWriteGbs = 12.0;
/// Load-to-use latency of the prototype (FPGA soft-IP transaction layer),
/// excluding the PCIe adder below.
inline constexpr double kCxlFpgaIdleLatencyNs = 350.0;

/// PCIe Gen5 x16 carrying CXL.mem: 64 GB/s raw per direction; 68-byte flit
/// framing + protocol efficiency ~0.86 (validated by the cxlsim DES).
inline constexpr double kCxlLinkDirGbs = 55.0;
/// The prototype's soft IP saturates well below the wire rate; combined
/// request+response ceiling (paper §2.2: "bandwidth ... subject to current
/// implementation constraints").
inline constexpr double kCxlFpgaCombinedGbs = 16.5;
inline constexpr double kCxlLinkLatencyNs = 110.0;

// ---------------------------------------------------------------------------
// Setup #2 — 2x Intel Xeon Gold 5215 (Cascade Lake), 10 cores/socket,
// DDR4 DRAM per socket (see NOTE above), UPI 2x 10.4 GT/s.
// ---------------------------------------------------------------------------

inline constexpr double kGoldDdr4ReadGbs = 13.0;
inline constexpr double kGoldDdr4WriteGbs = 11.5;
inline constexpr double kGoldDdr4IdleLatencyNs = 90.0;
inline constexpr double kGoldUpiGbs = 11.2;
inline constexpr double kGoldUpiLatencyNs = 40.0;
inline constexpr double kGoldMlpLines = 10.0;
inline constexpr std::uint64_t kGoldL3Bytes = 13'750ull << 10;

// ---------------------------------------------------------------------------
// Published baseline — single Intel Optane DCPMM DIMM (paper §1.4, [26]).
// ---------------------------------------------------------------------------

inline constexpr double kDcpmmReadGbs = 6.6;
inline constexpr double kDcpmmWriteGbs = 2.3;
inline constexpr double kDcpmmIdleLatencyNs = 305.0;

/// Setup #1 with named component ids.
struct SetupOne {
  Machine machine;
  SocketId socket0 = 0;
  SocketId socket1 = 1;
  MemoryId ddr5_socket0 = kInvalidId;
  MemoryId ddr5_socket1 = kInvalidId;
  MemoryId cxl = kInvalidId;
  LinkId upi = kInvalidId;
  LinkId cxl_link = kInvalidId;
};

/// Setup #2 with named component ids.
struct SetupTwo {
  Machine machine;
  SocketId socket0 = 0;
  SocketId socket1 = 1;
  MemoryId ddr4_socket0 = kInvalidId;
  MemoryId ddr4_socket1 = kInvalidId;
  LinkId upi = kInvalidId;
};

/// A "today" machine for the Figure-1 migration bench: DDR4 local memory
/// plus one DCPMM DIMM on socket0 (App-Direct), no CXL.
struct LegacySetup {
  Machine machine;
  SocketId socket0 = 0;
  SocketId socket1 = 1;
  MemoryId ddr4_socket0 = kInvalidId;
  MemoryId ddr4_socket1 = kInvalidId;
  MemoryId dcpmm = kInvalidId;
  LinkId upi = kInvalidId;
};

[[nodiscard]] SetupOne make_setup_one();
[[nodiscard]] SetupTwo make_setup_two();
[[nodiscard]] LegacySetup make_legacy_setup();

/// The FPGA prototype's media as if it were IMC-attached (no CXL link) —
/// used by the fabric-overhead ablation (DESIGN.md E9) to split "DDR4 media"
/// from "CXL fabric" cost exactly as paper §4 Class 1.(b) argues.
[[nodiscard]] SetupOne make_setup_one_media_on_imc();

// ---------------------------------------------------------------------------
// Paper §6 future-work variants.
// ---------------------------------------------------------------------------

/// Media alternatives behind the CXL link ("the CXL memory could also use
/// DDR5 and even Optane DCPMM" — §6, Hybrid Architectures).
enum class CxlMediaKind {
  Ddr4Fpga,   ///< the paper's prototype (DDR4-1333 behind soft IP)
  Ddr5Asic,   ///< a production ASIC expander with one DDR5-4800 channel
  DcpmmAsic,  ///< Optane media behind a CXL controller
};

/// Setup #1 with the CXL device's media swapped (same link, same exposure).
[[nodiscard]] SetupOne make_setup_one_with_media(CxlMediaKind media);

/// Paper §6 "Scalability": `hosts` independent single-socket SPR-class
/// nodes, each with its own DDR5 DIMM, all attached to ONE multi-headed
/// battery-backed expander (one PCIe5 x16 head per host, shared media +
/// controller).  There is no socket-to-socket interconnect between hosts.
struct MultiHostSetup {
  Machine machine;
  std::vector<SocketId> hosts;
  std::vector<MemoryId> host_dram;   ///< host i's local DDR5
  MemoryId shared_cxl = kInvalidId;  ///< the pooled device
  std::vector<LinkId> head_links;    ///< host i's head
};
[[nodiscard]] MultiHostSetup make_multihost_setup(int hosts);

}  // namespace cxlpmem::simkit::profiles
