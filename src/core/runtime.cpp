#include "core/runtime.hpp"

#include <cstring>
#include <stdexcept>

namespace cxlpmem::core {

namespace {

/// Builds the topology: sockets + one CPU-less node per memory-mode
/// exposure, in exposure order (so the paper's numbering pmem0/1/2 <->
/// node0/1/2 holds for Setup #1).
numakit::NumaTopology build_topology(const simkit::Machine& machine,
                                     const std::vector<Exposure>& exposures) {
  std::vector<simkit::MemoryId> cpuless;
  for (const Exposure& e : exposures)
    if (e.memory_mode) cpuless.push_back(e.memory);
  return numakit::NumaTopology::from_machine(machine, std::move(cpuless));
}

}  // namespace

Runtime::Runtime(simkit::Machine machine, std::vector<Exposure> exposures,
                 std::filesystem::path base_dir)
    : machine_(std::move(machine)),
      base_dir_(std::move(base_dir)),
      exposures_(std::move(exposures)),
      topology_(build_topology(machine_, exposures_)) {
  for (const Exposure& e : exposures_) {
    if (e.memory < 0 || e.memory >= machine_.memory_count())
      throw std::invalid_argument("exposure references unknown memory");
    if (e.memory_mode &&
        machine_.memory(e.memory).home_socket != simkit::kInvalidId)
      throw std::invalid_argument(
          "memory mode exposure requires link-attached memory");
    if (e.dax_name.empty()) continue;
    if (namespaces_.contains(e.dax_name))
      throw std::invalid_argument("duplicate namespace name " + e.dax_name);
    namespaces_.emplace(
        e.dax_name,
        std::make_unique<DaxNamespace>(e.dax_name,
                                       base_dir_ / "mnt" / e.dax_name,
                                       machine_, e.memory, e.emulated_pmem));
  }
}

DaxNamespace& Runtime::dax(const std::string& name) {
  const auto it = namespaces_.find(name);
  if (it == namespaces_.end())
    throw std::invalid_argument("no DAX namespace named " + name);
  return *it->second;
}

const DaxNamespace& Runtime::dax(const std::string& name) const {
  const auto it = namespaces_.find(name);
  if (it == namespaces_.end())
    throw std::invalid_argument("no DAX namespace named " + name);
  return *it->second;
}

std::vector<std::string> Runtime::dax_names() const {
  std::vector<std::string> names;
  names.reserve(namespaces_.size());
  for (const auto& [name, ns] : namespaces_) names.push_back(name);
  return names;
}

void Runtime::attach_device(simkit::MemoryId memory,
                            std::shared_ptr<cxlsim::Type3Device> device) {
  const simkit::MemoryDesc& desc = machine_.memory(memory);
  if (device->capacity() != desc.capacity_bytes)
    throw std::invalid_argument(
        "device capacity does not match machine description");
  // Write the namespace label into the device LSA, as a real DAX stack
  // records namespaces in label storage.
  for (const Exposure& e : exposures_) {
    if (e.memory != memory || e.dax_name.empty()) continue;
    std::vector<std::uint8_t> label(e.dax_name.begin(), e.dax_name.end());
    const auto res = device->execute(cxlsim::MboxOpcode::SetLsa, label);
    if (res.status != cxlsim::MboxStatus::Success)
      throw std::runtime_error("device rejected namespace label");
  }
  devices_[memory] = std::move(device);
}

cxlsim::Type3Device* Runtime::device(simkit::MemoryId memory) {
  const auto it = devices_.find(memory);
  return it == devices_.end() ? nullptr : it->second.get();
}

PersistenceDomain Runtime::domain_of(simkit::MemoryId memory) const {
  const auto it = devices_.find(memory);
  if (it != devices_.end()) {
    return it->second->persistence_domain()
               ? PersistenceDomain::BatteryBackedDevice
               : PersistenceDomain::Volatile;
  }
  bool emulated = false;
  for (const Exposure& e : exposures_)
    if (e.memory == memory && !e.dax_name.empty()) emulated = e.emulated_pmem;
  return classify(machine_.memory(memory), emulated);
}

SetupOneRuntime make_setup_one_runtime(
    const std::filesystem::path& base_dir) {
  SetupOneRuntime out;
  out.ids = simkit::profiles::make_setup_one();

  std::vector<Exposure> exposures{
      {.memory = out.ids.ddr5_socket0,
       .dax_name = "pmem0",
       .memory_mode = false,
       .emulated_pmem = true},
      {.memory = out.ids.ddr5_socket1,
       .dax_name = "pmem1",
       .memory_mode = false,
       .emulated_pmem = true},
      {.memory = out.ids.cxl,
       .dax_name = "pmem2",
       .memory_mode = true,
       .emulated_pmem = false},
  };
  out.runtime = std::make_unique<Runtime>(std::move(out.ids.machine),
                                          std::move(exposures), base_dir);
  out.runtime->attach_device(out.ids.cxl, cxlsim::make_fpga_prototype());
  return out;
}

SetupTwoRuntime make_setup_two_runtime(
    const std::filesystem::path& base_dir) {
  SetupTwoRuntime out;
  out.ids = simkit::profiles::make_setup_two();

  std::vector<Exposure> exposures{
      {.memory = out.ids.ddr4_socket0,
       .dax_name = "pmem0",
       .memory_mode = false,
       .emulated_pmem = true},
      {.memory = out.ids.ddr4_socket1,
       .dax_name = "pmem1",
       .memory_mode = false,
       .emulated_pmem = true},
  };
  out.runtime = std::make_unique<Runtime>(std::move(out.ids.machine),
                                          std::move(exposures), base_dir);
  return out;
}

}  // namespace cxlpmem::core
