#include "core/checkpoint.hpp"

#include <algorithm>
#include <atomic>
#include <cstring>

#include "pmemkit/checksum.hpp"
#include "pmemkit/crash_hook.hpp"
#include "pmemkit/layout.hpp"

namespace cxlpmem::core {

namespace {

/// Largest per-slot chunk table we are willing to undo-log in the seal
/// transaction (a full rewrite snapshots every entry): 4096 entries = 32 KiB
/// of pre-image against the lane's ~63 KiB undo budget.
constexpr std::uint64_t kMaxChunksPerSlot = 4096;

/// Above this many discontiguous dirty-entry runs, the seal transaction
/// snapshots the whole table as one range: per-range undo headers (32 B
/// each) would otherwise blow the lane budget long before the entries do.
constexpr std::uint64_t kMaxSealRanges = 256;

constexpr std::uint64_t round_up(std::uint64_t v, std::uint64_t to) {
  return (v + to - 1) / to * to;
}

/// The requested chunk size, sanitised: a 4 KiB multiple, and large enough
/// that max_payload never needs more than kMaxChunksPerSlot chunks.
std::uint64_t effective_chunk_size(std::uint64_t requested,
                                   std::uint64_t max_payload) {
  std::uint64_t chunk = std::max<std::uint64_t>(round_up(requested, 4096), 4096);
  const std::uint64_t floor =
      round_up((max_payload + kMaxChunksPerSlot - 1) / kMaxChunksPerSlot, 4096);
  return std::max(chunk, std::max<std::uint64_t>(floor, 4096));
}

/// Bytes the slot allocation must provide for `payload` bytes: exact for
/// single-chunk payloads (the legacy exact-fit contract), whole chunks
/// above that so payload jitter within a chunk never forces a realloc (a
/// realloc discards every fingerprint).
std::uint64_t slot_usable_for(std::uint64_t payload, std::uint64_t chunk) {
  return payload <= chunk ? payload : round_up(payload, chunk);
}

/// Heap bytes a live allocation of `usable` bytes occupies — size class for
/// runs, whole 256 KiB heap chunks for huge spans.  Two usables with equal
/// footprints are "the same size" to the allocator, so reallocating between
/// them would churn without reclaiming anything.
std::uint64_t alloc_footprint(std::uint64_t usable) {
  const std::uint64_t total = usable + sizeof(pmemkit::AllocHeader);
  const int cls = pmemkit::size_class_for(total);
  if (cls >= 0) return pmemkit::kSizeClasses[static_cast<std::size_t>(cls)];
  return round_up(total, pmemkit::kChunkSize);
}

std::uint64_t pool_size_for(std::uint64_t max_payload,
                            std::uint64_t chunk_size,
                            std::uint64_t table_capacity) {
  // Two data slots (chunk-rounded + span slack), two checksum tables,
  // allocator slack + fixed overhead.
  const std::uint64_t per_slot =
      slot_usable_for(std::max<std::uint64_t>(max_payload, 1), chunk_size) +
      pmemkit::kChunkSize;
  const std::uint64_t per_table = round_up(
      table_capacity * sizeof(std::uint64_t) + pmemkit::kRunHeaderSize, 4096);
  return 2 * per_slot + 2 * per_table + max_payload / 2 +
         pmemkit::ObjectPool::min_pool_size() + 8 * pmemkit::kChunkSize;
}

}  // namespace

CheckpointStore::CheckpointStore(DaxNamespace& ns, const std::string& file,
                                 std::uint64_t max_payload_bytes,
                                 bool allow_volatile,
                                 pmemkit::PoolOptions pool_options,
                                 CheckpointOptions options)
    : max_payload_(max_payload_bytes), options_(std::move(options)) {
  chunk_size_ = effective_chunk_size(options_.chunk_size, max_payload_bytes);
  table_capacity_ = std::max<std::uint64_t>(
      (max_payload_bytes + chunk_size_ - 1) / chunk_size_, 1);
  if (ns.pool_exists(file)) {
    pool_ = ns.open_pool(file, kLayout, pool_options);
  } else {
    pool_ = ns.create_pool(
        file, kLayout,
        pool_size_for(max_payload_bytes, chunk_size_, table_capacity_),
        allow_volatile, pool_options);
  }
  init_tables();
}

CheckpointStore::Root* CheckpointStore::root() const {
  return pool_->direct(pool_->root<Root>());
}

void CheckpointStore::init_tables() {
  Root* r = root();
  if (!r->table[0].is_null()) {
    // Reopen: the media's framing wins over this handle's request — a store
    // and its pool must agree on chunk boundaries or fingerprints are
    // meaningless.
    chunk_size_ = r->chunk_size;
    table_capacity_ = r->table_capacity;
    return;
  }
  pool_->run_tx([&] {
    pool_->tx_add_range(r, sizeof(Root));
    r->chunk_size = chunk_size_;
    r->table_capacity = table_capacity_;
    r->table[0] = pool_->tx_alloc(table_capacity_ * sizeof(std::uint64_t),
                                  kTableType, /*zero=*/true);
    r->table[1] = pool_->tx_alloc(table_capacity_ * sizeof(std::uint64_t),
                                  kTableType, /*zero=*/true);
  });
}

numakit::ThreadPool* CheckpointStore::worker_pool() {
  if (options_.threads <= 1) return nullptr;
  if (!workers_) {
    std::vector<simkit::CoreId> assignment = options_.affinity;
    if (assignment.empty())
      for (int i = 0; i < options_.threads; ++i) assignment.push_back(i);
    // Fewer placement cores than threads: wrap (hyperthread-style stacking
    // on the namespace's node beats spilling to a far socket).
    const std::size_t base = assignment.size();
    while (static_cast<int>(assignment.size()) < options_.threads)
      assignment.push_back(assignment[assignment.size() % base]);
    assignment.resize(static_cast<std::size_t>(options_.threads));
    workers_ = std::make_unique<numakit::ThreadPool>(std::move(assignment));
  }
  return workers_.get();
}

SaveStats CheckpointStore::save_empty(Root* r, std::uint32_t target) {
  // An empty epoch needs no copy phase: free the slot (the stale payload
  // would otherwise pin peak capacity forever) and flip in one transaction.
  pool_->run_tx([&] {
    pool_->tx_add_range(r, sizeof(Root));
    if (!r->slot[target].is_null()) {
      pool_->tx_free(r->slot[target]);
      r->slot[target] = pmemkit::kNullOid;
    }
    r->size[target] = 0;
    r->valid[target] = 0;  // no fingerprints to trust
    r->active = target;
    r->epoch += 1;
  });
  SaveStats stats;
  last_save_ = stats;
  return stats;
}

void CheckpointStore::copy_chunks(std::byte* dst,
                                  std::span<const std::byte> payload,
                                  const std::uint64_t* old_sums, bool trusted,
                                  std::uint64_t nchunks,
                                  std::vector<std::uint64_t>& sums,
                                  std::vector<std::uint8_t>& dirty,
                                  SaveStats& stats) {
  std::atomic<std::uint64_t> chunks_written{0};
  std::atomic<std::uint64_t> bytes_written{0};
  const auto one_chunk = [&](std::uint64_t i) {
    const std::uint64_t off = i * chunk_size_;
    const std::uint64_t n = std::min(chunk_size_, payload.size() - off);
    const std::uint64_t sum =
        pmemkit::fingerprint64(payload.data() + off, n);
    sums[i] = sum;
    if (trusted && old_sums[i] == sum) return;
    dirty[i] = 1;
    // memcpy_persist (not raw memcpy + persist): the store annotation tells
    // the persistency sanitizer these lines were deliberately rewritten even
    // when a line's bytes happen to match the previous epoch — a dirty chunk
    // is rewritten whole, but only some of its lines actually change.
    pool_->memcpy_persist(dst + off, payload.data() + off, n);
    chunks_written.fetch_add(1, std::memory_order_relaxed);
    bytes_written.fetch_add(n, std::memory_order_relaxed);
  };

  // Crash hooks are single-threaded by contract, so an installed hook (or a
  // serial configuration) keeps the copy on the calling thread — which is
  // also what gives the crash sweep its deterministic per-chunk points.
  numakit::ThreadPool* pool = worker_pool();
  if (pool == nullptr || pmemkit::crash_hook_installed()) {
    for (std::uint64_t i = 0; i < nchunks; ++i) {
      one_chunk(i);
      pmemkit::crash_point("ckpt:chunk");
    }
    stats.threads_used = 1;
  } else {
    pool->parallel_for(nchunks, [&](int, std::uint64_t begin,
                                    std::uint64_t end) {
      for (std::uint64_t i = begin; i < end; ++i) one_chunk(i);
    });
    stats.threads_used = pool->size();
  }
  stats.chunks_written = chunks_written.load();
  stats.bytes_written = bytes_written.load();
}

SaveStats CheckpointStore::save(std::span<const std::byte> payload,
                                SaveMode mode) {
  if (payload.size() > max_payload_)
    throw pmemkit::PoolError(pmemkit::ErrKind::CapacityExceeded,
                             "checkpoint payload exceeds store maximum");
  Root* r = root();
  const std::uint32_t target = 1 - (r->epoch == 0 ? 1 : r->active);
  if (payload.empty()) return save_empty(r, target);

  const std::uint64_t nchunks =
      (payload.size() + chunk_size_ - 1) / chunk_size_;
  if (nchunks > table_capacity_)
    throw pmemkit::PoolError(
        pmemkit::ErrKind::CapacityExceeded,
        "checkpoint payload spans " + std::to_string(nchunks) +
            " chunks, table holds " + std::to_string(table_capacity_));

  SaveStats stats;
  stats.chunks_total = nchunks;

  // Exact-fit sizing: realloc when the slot is too small OR when a fresh
  // allocation would occupy a smaller heap footprint — shrinking grossly
  // oversized slots is what keeps sawtooth payloads from pinning peak
  // capacity forever.
  const std::uint64_t needed = slot_usable_for(payload.size(), chunk_size_);
  const bool realloc =
      r->slot[target].is_null() ||
      pool_->usable_size(r->slot[target]) < needed ||
      alloc_footprint(pool_->usable_size(r->slot[target])) !=
          alloc_footprint(needed);
  const bool trusted =
      !realloc && r->valid[target] != 0 && mode == SaveMode::Incremental;
  stats.full_rewrite = !trusted;

  // Phase A — prepare: durably invalidate the target slot BEFORE any of its
  // bytes change (a crash mid-copy must never leave fingerprints that claim
  // to describe the half-overwritten contents), reallocating if needed.
  if (realloc || r->valid[target] != 0) {
    pool_->run_tx([&] {
      pool_->tx_add_range(r, sizeof(Root));
      r->valid[target] = 0;
      if (realloc) {
        if (!r->slot[target].is_null()) pool_->tx_free(r->slot[target]);
        r->slot[target] = pool_->tx_alloc(needed, kPayloadType);
      }
    });
  }
  pmemkit::crash_point("ckpt:prepared");

  // Phase B — copy: fingerprint every chunk, rewrite the dirty ones.
  auto* dst = static_cast<std::byte*>(pool_->direct(r->slot[target]));
  auto* table = static_cast<std::uint64_t*>(pool_->direct(r->table[target]));
  std::vector<std::uint64_t> sums(nchunks, 0);
  std::vector<std::uint8_t> dirty(nchunks, 0);
  copy_chunks(dst, payload, table, trusted, nchunks, sums, dirty, stats);
  pmemkit::crash_point("ckpt:chunks-done");

  // Phase C — seal: one small transaction updates the dirty fingerprints
  // and flips {size, valid, active, epoch} atomically.  Runs of adjacent
  // dirty entries are snapshotted as one range; every range costs a 32-byte
  // undo header on top of its 8-byte entries, so a badly fragmented dirty
  // pattern (e.g. every other chunk) is snapshotted as ONE whole-table
  // range instead — kMaxChunksPerSlot entries = 32 KiB of pre-image, which
  // the lane budget covers, where thousands of per-run headers would not.
  std::uint64_t ranges = 0;
  for (std::uint64_t i = 0; i < nchunks; ++i)
    if (table[i] != sums[i] && (i == 0 || table[i - 1] == sums[i - 1]))
      ++ranges;
  pool_->run_tx([&] {
    pool_->tx_add_range(r, sizeof(Root));
    if (ranges > kMaxSealRanges) {
      pool_->tx_add_range(table, nchunks * sizeof(std::uint64_t));
      std::copy(sums.begin(), sums.end(), table);
    } else {
      std::uint64_t i = 0;
      while (i < nchunks) {
        if (table[i] == sums[i]) {
          ++i;
          continue;
        }
        std::uint64_t j = i + 1;
        while (j < nchunks && table[j] != sums[j]) ++j;
        pool_->tx_add_range(&table[i], (j - i) * sizeof(std::uint64_t));
        std::copy(sums.begin() + static_cast<std::ptrdiff_t>(i),
                  sums.begin() + static_cast<std::ptrdiff_t>(j), table + i);
        i = j;
      }
    }
    r->size[target] = payload.size();
    r->valid[target] = 1;
    r->active = target;
    r->epoch += 1;
  });

  last_save_ = stats;
  return stats;
}

std::vector<std::byte> CheckpointStore::load() const {
  std::vector<std::byte> out(payload_bytes());
  (void)load_into(out);
  return out;
}

std::uint64_t CheckpointStore::load_into(std::span<std::byte> dst) const {
  const Root* r = root();
  if (r->epoch == 0) return 0;
  const std::uint64_t n = r->size[r->active];
  if (n > dst.size())
    throw pmemkit::PoolError(
        pmemkit::ErrKind::CapacityExceeded,
        "load_into buffer (" + std::to_string(dst.size()) +
            " bytes) smaller than checkpoint payload (" + std::to_string(n) +
            " bytes)");
  if (n > 0)
    // pmemlint: allow(restore path — reads pool bytes into the caller's buffer)
    std::memcpy(dst.data(), pool_->direct(r->slot[r->active]), n);
  return n;
}

std::uint64_t CheckpointStore::payload_bytes() const {
  const Root* r = root();
  return r->epoch == 0 ? 0 : r->size[r->active];
}

std::uint64_t CheckpointStore::epoch() const { return root()->epoch; }

}  // namespace cxlpmem::core
