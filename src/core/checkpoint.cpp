#include "core/checkpoint.hpp"

#include <cstring>

namespace cxlpmem::core {

namespace {
std::uint64_t pool_size_for(std::uint64_t max_payload) {
  // Two slots + allocator slack + fixed overhead.
  return 2 * max_payload + max_payload / 2 +
         pmemkit::ObjectPool::min_pool_size() + 8 * pmemkit::kChunkSize;
}
}  // namespace

CheckpointStore::CheckpointStore(DaxNamespace& ns, const std::string& file,
                                 std::uint64_t max_payload_bytes,
                                 bool allow_volatile,
                                 pmemkit::PoolOptions pool_options)
    : max_payload_(max_payload_bytes) {
  if (ns.pool_exists(file)) {
    pool_ = ns.open_pool(file, kLayout, pool_options);
  } else {
    pool_ = ns.create_pool(file, kLayout, pool_size_for(max_payload_bytes),
                           allow_volatile, pool_options);
  }
  (void)root();  // allocate the root up front
}

CheckpointStore::Root* CheckpointStore::root() const {
  return pool_->direct(pool_->root<Root>());
}

void CheckpointStore::save(std::span<const std::byte> payload) {
  if (payload.size() > max_payload_)
    throw pmemkit::PoolError(pmemkit::ErrKind::CapacityExceeded,
                             "checkpoint payload exceeds store maximum");
  Root* r = root();
  const std::uint32_t target = 1 - (r->epoch == 0 ? 1 : r->active);

  pool_->run_tx([&] {
    // Snapshot the root before ANY mutation of it.
    pool_->tx_add_range(r, sizeof(Root));

    // Size the target slot (exact-fit realloc keeps the pool bounded).
    if (!r->slot[target].is_null() &&
        pool_->usable_size(r->slot[target]) < payload.size()) {
      pool_->tx_free(r->slot[target]);
      r->slot[target] = pmemkit::kNullOid;
    }
    pmemkit::ObjId slot = r->slot[target];
    if (slot.is_null() && !payload.empty())
      slot = pool_->tx_alloc(payload.size(), kPayloadType);

    // Payload first (persisted before the metadata flip commits).
    if (!payload.empty()) {
      void* dst = pool_->direct(slot);
      std::memcpy(dst, payload.data(), payload.size());
      pool_->persist(dst, payload.size());
    }

    // Atomic flip.
    r->slot[target] = slot;
    r->size[target] = payload.size();
    r->active = target;
    r->epoch += 1;
  });
}

std::vector<std::byte> CheckpointStore::load() const {
  std::vector<std::byte> out(payload_bytes());
  (void)load_into(out);
  return out;
}

std::uint64_t CheckpointStore::load_into(std::span<std::byte> dst) const {
  const Root* r = root();
  if (r->epoch == 0) return 0;
  const std::uint64_t n = r->size[r->active];
  if (n > dst.size())
    throw pmemkit::PoolError(
        pmemkit::ErrKind::CapacityExceeded,
        "load_into buffer (" + std::to_string(dst.size()) +
            " bytes) smaller than checkpoint payload (" + std::to_string(n) +
            " bytes)");
  if (n > 0)
    std::memcpy(dst.data(), pool_->direct(r->slot[r->active]), n);
  return n;
}

std::uint64_t CheckpointStore::payload_bytes() const {
  const Root* r = root();
  return r->epoch == 0 ? 0 : r->size[r->active];
}

std::uint64_t CheckpointStore::epoch() const { return root()->epoch; }

}  // namespace cxlpmem::core
