// core/checkpoint.hpp — transactional checkpoint/restart on PMem/CXL.
//
// The HPC use-case the paper leads with (§1.2): applications periodically
// persist diagnostics / solver state so a failed job restarts from the last
// epoch instead of from zero.  CheckpointStore implements the standard
// double-buffer discipline on a pmemkit pool, with a chunked incremental
// engine on top:
//
//   * two payload slots; saves go to the inactive one;
//   * each slot carries a per-chunk checksum table (fixed chunk size,
//     default 256 KiB); save() fingerprints the new payload chunk by chunk
//     and rewrites only the chunks that changed since that slot was last
//     sealed — most solver state is identical between adjacent epochs, so
//     an incremental save moves a fraction of the bytes a full save does;
//   * chunk copy+persist fans out over a numakit::ThreadPool when the
//     store was configured with threads (the facade binds the pool to the
//     namespace's NUMA placement) — Wahlgren et al. show a single stream
//     cannot saturate CXL bandwidth;
//   * the payload is written and persisted FIRST, then one small
//     transaction seals the slot: checksums, {active slot, size, epoch}
//     and the slot-valid flag flip atomically;
//   * a crash at any instant leaves either epoch k or epoch k+1 — never a
//     torn checkpoint (CrashSimulator-verified in the tests).  A slot is
//     durably marked invalid before any of its bytes are overwritten, so a
//     save that dies mid-copy can never poison a later incremental diff.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/dax.hpp"
#include "numakit/threadpool.hpp"

namespace cxlpmem::core {

/// Default incremental-save chunk: one pmemkit heap chunk's worth of
/// payload, small enough that a handful of dirty pages stays a handful of
/// chunks, large enough that the checksum table stays tiny.
inline constexpr std::uint64_t kDefaultCheckpointChunk = 256 * 1024;

/// Engine knobs, fixed per store.  `chunk_size` is rounded to a 4 KiB
/// multiple and pinned into the pool at creation (reopens use the on-media
/// value, so a store and its pool never disagree about chunk framing).
/// `threads <= 1` keeps saves on the calling thread; larger values fan the
/// chunk copy out over a lazily-built ThreadPool whose workers are labelled
/// with `affinity` (the facade passes the cores of the namespace's NUMA
/// node; empty = thread index as core id).
struct CheckpointOptions {
  std::uint64_t chunk_size = kDefaultCheckpointChunk;
  int threads = 1;
  std::vector<simkit::CoreId> affinity;
};

/// How save() treats the previous epoch's chunk fingerprints.
enum class SaveMode {
  Incremental,  ///< rewrite only chunks whose checksum changed (default)
  Full,         ///< rewrite every chunk (baseline / paranoia mode)
};

/// What one save() actually did — the observability the bench and the
/// incremental tests key on.
struct SaveStats {
  std::uint64_t chunks_total = 0;    ///< chunks the payload spans
  std::uint64_t chunks_written = 0;  ///< chunks copied + persisted
  std::uint64_t bytes_written = 0;   ///< payload bytes actually copied
  bool full_rewrite = false;  ///< no trusted fingerprints (or SaveMode::Full)
  int threads_used = 1;       ///< workers the copy fanned out over
};

class CheckpointStore {
 public:
  /// Opens (or creates) pool `file` in `ns`, sized to hold two payloads of
  /// up to `max_payload_bytes`.  `allow_volatile` forwards to the namespace
  /// persistence check; `pool_options` allows shadow-tracked stores for
  /// crash testing; `options` sets the incremental-engine knobs.
  CheckpointStore(DaxNamespace& ns, const std::string& file,
                  std::uint64_t max_payload_bytes,
                  bool allow_volatile = false,
                  pmemkit::PoolOptions pool_options = pmemkit::PoolOptions(),
                  CheckpointOptions options = CheckpointOptions());

  /// Atomically replaces the checkpoint.  Throws on payloads larger than
  /// max_payload_bytes.  Incremental by default; SaveMode::Full forces a
  /// complete rewrite.  Returns what the save moved.
  SaveStats save(std::span<const std::byte> payload,
                 SaveMode mode = SaveMode::Incremental);

  /// The latest checkpoint payload; empty when none was ever saved.
  /// Heap-allocates a fresh copy — restart loops that already own a buffer
  /// should use load_into().
  [[nodiscard]] std::vector<std::byte> load() const;

  /// Copies the latest payload into `dst` without allocating; returns the
  /// number of bytes written (0 when nothing was ever saved).  Throws
  /// PoolError(CapacityExceeded) when `dst` is smaller than the payload —
  /// size the buffer with payload_bytes() or max_payload_bytes().
  std::uint64_t load_into(std::span<std::byte> dst) const;

  /// Size of the latest payload (0 when nothing was ever saved).
  [[nodiscard]] std::uint64_t payload_bytes() const;

  /// Monotonic save counter (0 = nothing saved yet).
  [[nodiscard]] std::uint64_t epoch() const;
  [[nodiscard]] bool has_checkpoint() const { return epoch() > 0; }
  [[nodiscard]] std::uint64_t max_payload_bytes() const noexcept {
    return max_payload_;
  }

  /// Effective chunk size (requested value rounded/pinned at creation; on
  /// reopen, the on-media value).
  [[nodiscard]] std::uint64_t chunk_size() const noexcept {
    return chunk_size_;
  }

  /// Stats of the most recent save() on this handle (zeroes before one).
  [[nodiscard]] const SaveStats& last_save() const noexcept {
    return last_save_;
  }

  /// True when the pool needed recovery at open (i.e. the writer crashed).
  [[nodiscard]] bool recovered() const { return pool_->recovered(); }

  /// Underlying pool (crash-test harness access).
  [[nodiscard]] pmemkit::ObjectPool& pool() noexcept { return *pool_; }

 private:
  // On-media root (layout "cxlpmem-checkpoint2").  `table[s]` holds one
  // uint64 fingerprint64 fingerprint per chunk of slot s; `valid[s]` is 1
  // only between a seal of slot s and the next save that targets it —
  // while 0, the fingerprints are untrusted and the next save rewrites
  // everything.
  struct Root {
    pmemkit::ObjId slot[2];   ///< chunk data (null until first non-empty save)
    pmemkit::ObjId table[2];  ///< per-chunk checksum tables (fixed capacity)
    std::uint64_t size[2];
    std::uint32_t valid[2];
    std::uint64_t epoch;
    std::uint32_t active;
    std::uint32_t reserved;
    std::uint64_t chunk_size;      ///< pinned at creation
    std::uint64_t table_capacity;  ///< chunks per table, pinned at creation
  };

  [[nodiscard]] Root* root() const;
  void init_tables();
  SaveStats save_empty(Root* r, std::uint32_t target);
  /// Copies dirty chunks of `payload` into the target slot, filling
  /// `sums[i]` with every chunk's fresh fingerprint and `dirty[i]` with
  /// whether chunk i was rewritten.  Runs on the calling thread or the
  /// worker pool.
  void copy_chunks(std::byte* dst, std::span<const std::byte> payload,
                   const std::uint64_t* old_sums, bool trusted,
                   std::uint64_t nchunks, std::vector<std::uint64_t>& sums,
                   std::vector<std::uint8_t>& dirty, SaveStats& stats);
  [[nodiscard]] numakit::ThreadPool* worker_pool();

  static constexpr const char* kLayout = "cxlpmem-checkpoint2";
  static constexpr std::uint32_t kPayloadType = 0x4350;  // 'CP'
  static constexpr std::uint32_t kTableType = 0x4354;    // 'CT'

  std::unique_ptr<pmemkit::ObjectPool> pool_;
  std::uint64_t max_payload_;
  std::uint64_t chunk_size_ = kDefaultCheckpointChunk;
  std::uint64_t table_capacity_ = 1;
  CheckpointOptions options_;
  std::unique_ptr<numakit::ThreadPool> workers_;  ///< lazily built
  SaveStats last_save_;
};

}  // namespace cxlpmem::core
