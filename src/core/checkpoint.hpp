// core/checkpoint.hpp — transactional checkpoint/restart on PMem/CXL.
//
// The HPC use-case the paper leads with (§1.2): applications periodically
// persist diagnostics / solver state so a failed job restarts from the last
// epoch instead of from zero.  CheckpointStore implements the standard
// double-buffer discipline on a pmemkit pool:
//
//   * two payload slots; saves go to the inactive one;
//   * payload is written and persisted FIRST, then a transaction flips
//     {active slot, size, epoch} atomically;
//   * a crash at any instant leaves either epoch k or epoch k+1 — never a
//     torn checkpoint (CrashSimulator-verified in the tests).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/dax.hpp"

namespace cxlpmem::core {

class CheckpointStore {
 public:
  /// Opens (or creates) pool `file` in `ns`, sized to hold two payloads of
  /// up to `max_payload_bytes`.  `allow_volatile` forwards to the namespace
  /// persistence check; `pool_options` allows shadow-tracked stores for
  /// crash testing.
  CheckpointStore(DaxNamespace& ns, const std::string& file,
                  std::uint64_t max_payload_bytes,
                  bool allow_volatile = false,
                  pmemkit::PoolOptions pool_options = pmemkit::PoolOptions());

  /// Atomically replaces the checkpoint.  Throws on payloads larger than
  /// max_payload_bytes.
  void save(std::span<const std::byte> payload);

  /// The latest checkpoint payload; empty when none was ever saved.
  /// Heap-allocates a fresh copy — restart loops that already own a buffer
  /// should use load_into().
  [[nodiscard]] std::vector<std::byte> load() const;

  /// Copies the latest payload into `dst` without allocating; returns the
  /// number of bytes written (0 when nothing was ever saved).  Throws
  /// PoolError(CapacityExceeded) when `dst` is smaller than the payload —
  /// size the buffer with payload_bytes() or max_payload_bytes().
  std::uint64_t load_into(std::span<std::byte> dst) const;

  /// Size of the latest payload (0 when nothing was ever saved).
  [[nodiscard]] std::uint64_t payload_bytes() const;

  /// Monotonic save counter (0 = nothing saved yet).
  [[nodiscard]] std::uint64_t epoch() const;
  [[nodiscard]] bool has_checkpoint() const { return epoch() > 0; }
  [[nodiscard]] std::uint64_t max_payload_bytes() const noexcept {
    return max_payload_;
  }

  /// True when the pool needed recovery at open (i.e. the writer crashed).
  [[nodiscard]] bool recovered() const { return pool_->recovered(); }

  /// Underlying pool (crash-test harness access).
  [[nodiscard]] pmemkit::ObjectPool& pool() noexcept { return *pool_; }

 private:
  struct Root {
    pmemkit::ObjId slot[2];
    std::uint64_t size[2];
    std::uint64_t epoch;
    std::uint32_t active;
    std::uint32_t reserved;
  };

  [[nodiscard]] Root* root() const;

  static constexpr const char* kLayout = "cxlpmem-checkpoint";
  static constexpr std::uint32_t kPayloadType = 0x4350;  // 'CP'

  std::unique_ptr<pmemkit::ObjectPool> pool_;
  std::uint64_t max_payload_;
};

}  // namespace cxlpmem::core
