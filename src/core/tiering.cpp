#include "core/tiering.hpp"

#include <algorithm>

#include "core/persist_domain.hpp"

namespace cxlpmem::core {

namespace {

/// Single-flow model probe: one thread of the given pattern on `memory`.
double probe_gbs(const simkit::Machine& machine, simkit::SocketId socket,
                 simkit::MemoryId memory, double mlp, double read_fraction) {
  const simkit::BandwidthModel model(machine);
  simkit::TrafficSpec spec;
  spec.core = machine.cores_of_socket(socket).front();
  spec.memory = memory;
  spec.traffic = {.read_frac = read_fraction,
                  .write_frac = 1.0 - read_fraction,
                  .write_allocate = true};
  spec.mlp_override = mlp;
  spec.working_set_bytes = 0;  // capacity pressure handled separately
  return model.solve({spec}).total_gbs;
}

/// Streaming ceiling: all of the socket's cores at full MLP.
double saturated_gbs(const simkit::Machine& machine,
                     simkit::SocketId socket, simkit::MemoryId memory) {
  const simkit::BandwidthModel model(machine);
  std::vector<simkit::TrafficSpec> specs;
  for (const simkit::CoreId c : machine.cores_of_socket(socket)) {
    simkit::TrafficSpec spec;
    spec.core = c;
    spec.memory = memory;
    spec.traffic = simkit::kernel_traffic::kTriad;
    specs.push_back(spec);
  }
  return model.solve(specs).total_gbs;
}

}  // namespace

TierAdvisor::TierAdvisor(const simkit::Machine& machine,
                         simkit::SocketId viewpoint_socket)
    : machine_(&machine), viewpoint_(viewpoint_socket) {
  for (simkit::MemoryId m = 0; m < machine.memory_count(); ++m) {
    const simkit::MemoryDesc& desc = machine.memory(m);
    Tier t;
    t.memory = m;
    t.name = desc.name;
    t.idle_latency_ns =
        simkit::resolve_route(machine, viewpoint_socket, m).latency_ns;
    t.saturated_gbs = saturated_gbs(machine, viewpoint_socket, m);
    t.capacity_bytes = desc.capacity_bytes;
    t.durable = core::durable(classify(desc));
    tiers_.push_back(std::move(t));
  }
}

double TierAdvisor::score(const Tier& tier,
                          const PlacementRequest& request) const {
  return probe_gbs(*machine_, viewpoint_, tier.memory, request.mlp,
                   request.read_fraction);
}

std::vector<PlacementDecision> TierAdvisor::place(
    std::vector<PlacementRequest> requests) const {
  // Hottest first; stable for equal hotness (input order preserved).
  std::stable_sort(requests.begin(), requests.end(),
                   [](const PlacementRequest& a, const PlacementRequest& b) {
                     return a.hotness > b.hotness;
                   });

  std::vector<std::uint64_t> remaining;
  remaining.reserve(tiers_.size());
  for (const Tier& t : tiers_) remaining.push_back(t.capacity_bytes);

  std::vector<PlacementDecision> out;
  out.reserve(requests.size());
  for (const PlacementRequest& req : requests) {
    PlacementDecision d;
    d.request = req;
    double best = -1.0;
    for (std::size_t i = 0; i < tiers_.size(); ++i) {
      const Tier& t = tiers_[i];
      if (req.needs_persistence && !t.durable) continue;
      if (remaining[i] < req.bytes) continue;
      const double s = score(t, req);
      if (s > best) {
        best = s;
        d.memory = t.memory;
        d.tier_name = t.name;
        d.expected_gbs = s;
        d.satisfied = true;
      }
    }
    if (d.satisfied) {
      for (std::size_t i = 0; i < tiers_.size(); ++i)
        if (tiers_[i].memory == d.memory) remaining[i] -= req.bytes;
    }
    out.push_back(std::move(d));
  }
  return out;
}

}  // namespace cxlpmem::core
