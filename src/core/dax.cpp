#include "core/dax.hpp"

namespace cxlpmem::core {

DaxNamespace::DaxNamespace(std::string name, std::filesystem::path dir,
                           const simkit::Machine& machine,
                           simkit::MemoryId memory, bool emulated_pmem)
    : name_(std::move(name)),
      dir_(std::move(dir)),
      memory_(memory),
      domain_(classify(machine.memory(memory), emulated_pmem)),
      capacity_(machine.memory(memory).capacity_bytes) {
  std::filesystem::create_directories(dir_);
  rescan_used();
}

void DaxNamespace::rescan_used() {
  used_ = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir_))
    if (entry.is_regular_file())
      used_ += static_cast<std::uint64_t>(entry.file_size());
}

std::filesystem::path DaxNamespace::file_path(const std::string& file) const {
  if (file.empty() || file.find('/') != std::string::npos)
    throw pmemkit::PoolError(pmemkit::ErrKind::BadName,
                             "pool file name must be a plain file name");
  return dir_ / file;
}

std::unique_ptr<pmemkit::ObjectPool> DaxNamespace::create_pool(
    const std::string& file, std::string_view layout, std::uint64_t size,
    bool allow_volatile, pmemkit::PoolOptions options) {
  if (!durable() && !allow_volatile)
    throw pmemkit::PoolError(
        pmemkit::ErrKind::NotDurable,
        "namespace '" + name_ + "' is " + to_string(domain_) +
            " — pass allow_volatile to create pools on it anyway");
  if (size > available_bytes())
    throw pmemkit::PoolError(pmemkit::ErrKind::CapacityExceeded,
                             "namespace '" + name_ +
                                 "' out of capacity: need " +
                                 std::to_string(size) + ", available " +
                                 std::to_string(available_bytes()));
  pmemkit::FileResource resource(file_path(file));
  auto pool = pmemkit::ObjectPool::create(resource, layout, size, options);
  used_ += size;
  return pool;
}

std::unique_ptr<pmemkit::ObjectPool> DaxNamespace::open_pool(
    const std::string& file, std::string_view layout,
    pmemkit::PoolOptions options) {
  pmemkit::FileResource resource(file_path(file));
  return pmemkit::ObjectPool::open(resource, layout, options);
}

void DaxNamespace::remove_pool(const std::string& file) {
  const std::filesystem::path p = file_path(file);
  if (!std::filesystem::exists(p))
    throw pmemkit::PoolError(pmemkit::ErrKind::PoolNotFound,
                             "namespace '" + name_ + "' has no pool file '" +
                                 file + "'");
  std::error_code ec;
  const auto size = std::filesystem::file_size(p, ec);
  if (!std::filesystem::remove(p, ec) || ec)
    throw pmemkit::PoolError(pmemkit::ErrKind::Io,
                             "cannot remove pool " + p.string());
  used_ -= std::min<std::uint64_t>(used_, size);
}

bool DaxNamespace::pool_exists(const std::string& file) const {
  return std::filesystem::exists(file_path(file));
}

std::filesystem::path DaxNamespace::import_file(
    const std::filesystem::path& src, const std::string& file) {
  const std::filesystem::path to = file_path(file);
  if (std::filesystem::exists(to))
    throw pmemkit::PoolError(pmemkit::ErrKind::PoolExists,
                             "namespace already has a file named " + file);
  const auto size =
      static_cast<std::uint64_t>(std::filesystem::file_size(src));
  if (size > available_bytes())
    throw pmemkit::PoolError(pmemkit::ErrKind::CapacityExceeded,
                             "namespace '" + name_ +
                                 "' out of capacity for import of " + file);
  std::filesystem::copy_file(src, to);
  used_ += size;
  return to;
}

}  // namespace cxlpmem::core
