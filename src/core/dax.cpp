#include "core/dax.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "pmemkit/faultkit.hpp"

namespace cxlpmem::core {

namespace {

std::function<void(const std::filesystem::path&)> g_sync_observer;

/// fsync `p` (a file, or a directory when `directory`) so the bytes — or
/// the directory entry — are on media before we claim durability.
void sync_path(const std::filesystem::path& p, bool directory) {
  // Injected before the open: a failed sync must look exactly like a
  // failing device (no partial durability claim), and the import path
  // already rolls back on any throw from here.
  pmemkit::fault_point(pmemkit::FaultSite::Sync, "fsync " + p.string());
  const int flags = directory ? (O_RDONLY | O_DIRECTORY) : O_RDONLY;
  const int fd = ::open(p.c_str(), flags);
  if (fd < 0)
    throw pmemkit::PoolError(pmemkit::ErrKind::Io,
                             "cannot open " + p.string() +
                                 " for fsync: " + std::strerror(errno));
  if (::fsync(fd) != 0) {
    const int err = errno;
    ::close(fd);
    throw pmemkit::PoolError(pmemkit::errno_kind(err),
                             "fsync " + p.string() + ": " +
                                 std::strerror(err));
  }
  ::close(fd);
  if (g_sync_observer) g_sync_observer(p);
}

}  // namespace

void set_sync_observer(
    std::function<void(const std::filesystem::path&)> observer) {
  g_sync_observer = std::move(observer);
}

DaxNamespace::DaxNamespace(std::string name, std::filesystem::path dir,
                           const simkit::Machine& machine,
                           simkit::MemoryId memory, bool emulated_pmem)
    : name_(std::move(name)),
      dir_(std::move(dir)),
      memory_(memory),
      domain_(classify(machine.memory(memory), emulated_pmem)),
      capacity_(machine.memory(memory).capacity_bytes) {
  std::filesystem::create_directories(dir_);
  rescan_used();
}

void DaxNamespace::rescan_used() {
  used_ = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir_))
    if (entry.is_regular_file())
      used_ += static_cast<std::uint64_t>(entry.file_size());
}

std::filesystem::path DaxNamespace::file_path(const std::string& file) const {
  if (file.empty() || file.find('/') != std::string::npos)
    throw pmemkit::PoolError(pmemkit::ErrKind::BadName,
                             "pool file name must be a plain file name");
  return dir_ / file;
}

std::unique_ptr<pmemkit::ObjectPool> DaxNamespace::create_pool(
    const std::string& file, std::string_view layout, std::uint64_t size,
    bool allow_volatile, pmemkit::PoolOptions options) {
  if (!durable() && !allow_volatile)
    throw pmemkit::PoolError(
        pmemkit::ErrKind::NotDurable,
        "namespace '" + name_ + "' is " + to_string(domain_) +
            " — pass allow_volatile to create pools on it anyway");
  if (size > available_bytes())
    throw pmemkit::PoolError(pmemkit::ErrKind::CapacityExceeded,
                             "namespace '" + name_ +
                                 "' out of capacity: need " +
                                 std::to_string(size) + ", available " +
                                 std::to_string(available_bytes()));
  pmemkit::FileResource resource(file_path(file));
  pmemkit::FaultyResource faulty(resource);
  pmemkit::PmemResource& backend =
      pmemkit::faults_armed()
          ? static_cast<pmemkit::PmemResource&>(faulty)
          : static_cast<pmemkit::PmemResource&>(resource);
  auto pool = pmemkit::ObjectPool::create(backend, layout, size, options);
  used_ += size;
  return pool;
}

std::unique_ptr<pmemkit::ObjectPool> DaxNamespace::open_pool(
    const std::string& file, std::string_view layout,
    pmemkit::PoolOptions options) {
  pmemkit::FileResource resource(file_path(file));
  pmemkit::FaultyResource faulty(resource);
  pmemkit::PmemResource& backend =
      pmemkit::faults_armed()
          ? static_cast<pmemkit::PmemResource&>(faulty)
          : static_cast<pmemkit::PmemResource&>(resource);
  return pmemkit::ObjectPool::open(backend, layout, options);
}

void DaxNamespace::resize_pool(pmemkit::ObjectPool& pool,
                               std::uint64_t new_size) {
  const std::uint64_t before = pool.size();
  if (new_size > before && new_size - before > available_bytes())
    throw pmemkit::PoolError(pmemkit::ErrKind::CapacityExceeded,
                             "namespace '" + name_ +
                                 "' out of capacity: resize needs " +
                                 std::to_string(new_size - before) +
                                 " more bytes, available " +
                                 std::to_string(available_bytes()));
  pool.resize(new_size);
  const std::uint64_t after = pool.size();
  if (after >= before)
    used_ += after - before;
  else
    used_ -= std::min<std::uint64_t>(used_, before - after);
}

void DaxNamespace::remove_pool(const std::string& file) {
  const std::filesystem::path p = file_path(file);
  if (!std::filesystem::exists(p))
    throw pmemkit::PoolError(pmemkit::ErrKind::PoolNotFound,
                             "namespace '" + name_ + "' has no pool file '" +
                                 file + "'");
  std::error_code ec;
  const auto size = std::filesystem::file_size(p, ec);
  if (!std::filesystem::remove(p, ec) || ec)
    throw pmemkit::PoolError(pmemkit::ErrKind::Io,
                             "cannot remove pool " + p.string());
  used_ -= std::min<std::uint64_t>(used_, size);
}

bool DaxNamespace::pool_exists(const std::string& file) const {
  return std::filesystem::exists(file_path(file));
}

std::filesystem::path DaxNamespace::import_file(
    const std::filesystem::path& src, const std::string& file) {
  const std::filesystem::path to = file_path(file);
  if (std::filesystem::exists(to))
    throw pmemkit::PoolError(pmemkit::ErrKind::PoolExists,
                             "namespace already has a file named " + file);
  const auto size =
      static_cast<std::uint64_t>(std::filesystem::file_size(src));
  if (size > available_bytes())
    throw pmemkit::PoolError(pmemkit::ErrKind::CapacityExceeded,
                             "namespace '" + name_ +
                                 "' out of capacity for import of " + file);
  std::filesystem::copy_file(src, to);
  // copy_file leaves the bytes in the page cache; a migration reported as
  // durable must survive a power cut, so sync the file contents AND the
  // directory entry (the rename/creation is not durable until its parent
  // directory is) before returning.  A failed sync removes the copy: the
  // import either completes durably or leaves no trace — an orphan would
  // wedge every retry on PoolExists and dodge capacity accounting.
  try {
    sync_path(to, /*directory=*/false);
    sync_path(dir_, /*directory=*/true);
  } catch (...) {
    std::error_code ec;
    std::filesystem::remove(to, ec);
    throw;
  }
  used_ += size;
  return to;
}

}  // namespace cxlpmem::core
