#include "core/migrate.hpp"

#include <filesystem>

namespace cxlpmem::core {

MigrationReport migrate_pool(DaxNamespace& src, DaxNamespace& dst,
                             const std::string& file,
                             std::string_view layout) {
  MigrationReport report;
  report.source_domain = src.domain();
  report.destination_domain = dst.domain();

  // Validate the source (recovery runs if it was dirty) and capture its
  // identity for post-copy verification.
  {
    auto pool = src.open_pool(file, layout);
    report.pool_id = pool->pool_id();
    report.object_count = pool->stats().heap.object_count;
  }
  // Report what actually moved: the destination file's on-disk size, not
  // the source pool's logical size (the two can disagree — e.g. a file
  // with bytes past the mapped region — and "copied" must mean copied).
  const std::filesystem::path to =
      dst.import_file(src.path() / file, file);
  report.bytes_copied =
      static_cast<std::uint64_t>(std::filesystem::file_size(to));

  // Verify the destination opens and matches.
  try {
    auto pool = dst.open_pool(file, layout);
    if (pool->pool_id() != report.pool_id ||
        pool->stats().heap.object_count != report.object_count)
      throw pmemkit::PoolError("migrated pool failed verification");
  } catch (...) {
    dst.remove_pool(file);
    throw;
  }
  return report;
}

}  // namespace cxlpmem::core
