// core/tiering.hpp — data-placement advisor for hybrid DRAM/CXL/PMem
// machines.
//
// Paper §1.3: "efficient data placement and movement strategies are crucial
// to minimize the impact of network latencies and ensure that
// data-intensive workloads can effectively utilize CXL-based disaggregated
// memory"; §6 proposes hybrid DDR/PMem/CXL architectures.  TierAdvisor
// turns those sentences into an algorithm:
//
//   * every exposed memory device becomes a tier with measured properties
//     (latency, saturated bandwidth via the machine model, capacity,
//     durability);
//   * an allocation request carries requirements (bytes, persistence,
//     access pattern = MLP, read fraction) and a hotness weight;
//   * place() fills requests in hotness order, scoring each tier by
//     modelled achievable bandwidth for THAT access pattern (so
//     latency-bound requests avoid far memory even when STREAM numbers
//     look fine), subject to capacity and durability constraints.
//
// The advisor is deliberately mechanism-free: it returns a placement plan;
// executing it is the caller's business (pools for persistent data,
// membind for volatile data).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "simkit/bwmodel.hpp"
#include "simkit/topology.hpp"

namespace cxlpmem::core {

/// One placement candidate (a memory device viewed from a socket).
struct Tier {
  simkit::MemoryId memory = 0;
  std::string name;
  double idle_latency_ns = 0.0;
  double saturated_gbs = 0.0;  ///< streaming ceiling from the model
  std::uint64_t capacity_bytes = 0;
  bool durable = false;
};

/// What an allocation needs.
struct PlacementRequest {
  std::string label;
  std::uint64_t bytes = 0;
  bool needs_persistence = false;
  /// Access pattern: outstanding misses the workload can sustain
  /// (1 = pointer chasing .. 16 = streaming).
  double mlp = 16.0;
  double read_fraction = 0.67;
  /// Relative importance; hotter requests get first pick.
  double hotness = 1.0;
};

struct PlacementDecision {
  PlacementRequest request;
  simkit::MemoryId memory = simkit::kInvalidId;
  std::string tier_name;
  /// Modelled per-thread bandwidth for this request on the chosen tier.
  double expected_gbs = 0.0;
  bool satisfied = false;  ///< false when nothing could host it
};

/// The advisor's answer as one value: every decision (hotness-descending)
/// plus plan-level queries, so callers don't re-derive "did everything
/// fit?" from the vector.
struct PlacementPlan {
  std::vector<PlacementDecision> decisions;

  [[nodiscard]] bool fully_satisfied() const noexcept {
    for (const auto& d : decisions)
      if (!d.satisfied) return false;
    return true;
  }
  [[nodiscard]] std::size_t unsatisfied_count() const noexcept {
    std::size_t n = 0;
    for (const auto& d : decisions) n += d.satisfied ? 0 : 1;
    return n;
  }
  /// The decision for a request label, or nullptr.
  [[nodiscard]] const PlacementDecision* find(std::string_view label)
      const noexcept {
    for (const auto& d : decisions)
      if (d.request.label == label) return &d;
    return nullptr;
  }
};

class TierAdvisor {
 public:
  /// Builds tiers from every memory device of `machine`, probing each with
  /// the bandwidth model from `viewpoint_socket`.
  TierAdvisor(const simkit::Machine& machine,
              simkit::SocketId viewpoint_socket);

  [[nodiscard]] const std::vector<Tier>& tiers() const noexcept {
    return tiers_;
  }

  /// Places every request (hotness-descending), decrementing tier capacity
  /// as it goes.  Deterministic.  Requests that fit nowhere come back with
  /// satisfied == false.
  [[nodiscard]] std::vector<PlacementDecision> place(
      std::vector<PlacementRequest> requests) const;

  /// place() packaged as a PlacementPlan.
  [[nodiscard]] PlacementPlan plan(
      std::vector<PlacementRequest> requests) const {
    return PlacementPlan{place(std::move(requests))};
  }

  /// Modelled single-thread bandwidth of `request` on `tier` (the scoring
  /// function, exposed for tests and ablations).
  [[nodiscard]] double score(const Tier& tier,
                             const PlacementRequest& request) const;

 private:
  const simkit::Machine* machine_;
  simkit::SocketId viewpoint_;
  std::vector<Tier> tiers_;
};

}  // namespace cxlpmem::core
