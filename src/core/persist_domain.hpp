// core/persist_domain.hpp — persistence-domain classification.
//
// Whether a store that "reached memory" survives power loss depends on what
// stands behind the address:
//   * plain DRAM                      — nothing survives (Volatile);
//   * DRAM used to *emulate* PMem     — still volatile; the paper's
//     /mnt/pmem0 and /mnt/pmem1 mounts are exactly this (emulation per
//     [6, 13]), useful for performance work, unsafe for real durability;
//   * Optane DCPMM                    — ADR: stores accepted by the memory
//     controller are persistent;
//   * battery-backed CXL device      — the device is its own persistence
//     domain; one battery per device serves every connected host, the
//     paper's §1.4 economic argument.
#pragma once

#include <string>

#include "simkit/topology.hpp"

namespace cxlpmem::core {

enum class PersistenceDomain {
  Volatile,             ///< plain DRAM
  EmulatedPmem,         ///< DRAM posing as PMem (perf experiments only)
  AdrDimm,              ///< DCPMM-style ADR-protected DIMM
  BatteryBackedDevice,  ///< battery-backed CXL expander
};

[[nodiscard]] inline std::string to_string(PersistenceDomain d) {
  switch (d) {
    case PersistenceDomain::Volatile: return "volatile";
    case PersistenceDomain::EmulatedPmem: return "emulated-pmem";
    case PersistenceDomain::AdrDimm: return "adr-dimm";
    case PersistenceDomain::BatteryBackedDevice: return "battery-device";
  }
  return "?";
}

/// True when data persisted to this domain actually survives power loss.
[[nodiscard]] constexpr bool durable(PersistenceDomain d) noexcept {
  return d == PersistenceDomain::AdrDimm ||
         d == PersistenceDomain::BatteryBackedDevice;
}

/// Classifies a machine memory device.  `emulated_pmem` marks DRAM the
/// operator exposes through a pmem mount anyway (the paper's remote-socket
/// "PMem" emulation).
[[nodiscard]] inline PersistenceDomain classify(
    const simkit::MemoryDesc& mem, bool emulated_pmem = false) {
  using simkit::MemoryKind;
  switch (mem.kind) {
    case MemoryKind::Dcpmm:
      return PersistenceDomain::AdrDimm;
    case MemoryKind::CxlExpander:
      return mem.persistent ? PersistenceDomain::BatteryBackedDevice
                            : PersistenceDomain::Volatile;
    case MemoryKind::DramDdr4:
    case MemoryKind::DramDdr5:
      return emulated_pmem ? PersistenceDomain::EmulatedPmem
                           : PersistenceDomain::Volatile;
  }
  return PersistenceDomain::Volatile;
}

}  // namespace cxlpmem::core
