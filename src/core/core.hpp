// core/core.hpp — umbrella header for the CXL-as-PMem runtime (the paper's
// primary contribution).
#pragma once

#include "core/checkpoint.hpp"      // IWYU pragma: export
#include "core/dax.hpp"             // IWYU pragma: export
#include "core/migrate.hpp"         // IWYU pragma: export
#include "core/persist_domain.hpp"  // IWYU pragma: export
#include "core/runtime.hpp"         // IWYU pragma: export
#include "core/tiering.hpp"         // IWYU pragma: export
