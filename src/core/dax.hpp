// core/dax.hpp — emulated fsdax namespaces.
//
// On real hardware, `/mnt/pmem2` is an fsdax mount over a device-DAX
// namespace carved from the CXL expander.  Here a DaxNamespace binds a
// directory to one modelled memory device, enforcing:
//   * capacity — pool files cannot outgrow the device,
//   * identity — pools opened through the namespace are attributed to the
//     device (so STREAM placement and persistence checks agree),
//   * persistence discipline — creating a pool on a non-durable domain
//     requires the caller to opt in (the paper's emulated-PMem runs do).
#pragma once

#include <cstdint>
#include <filesystem>
#include <functional>
#include <memory>
#include <string>

#include "core/persist_domain.hpp"
#include "pmemkit/pmemkit.hpp"
#include "simkit/topology.hpp"

namespace cxlpmem::core {

/// Test seam: `observer` is invoked after every durability fsync the
/// namespace performs (import_file syncs the copied file, then its
/// directory).  The fsync-before-durable-report contract cannot be crash-
/// simulated against a real filesystem, so regression tests pin it by
/// observing the sync sequence instead; an observer that throws propagates
/// exactly like an fsync failure (used to test the cleanup path).  Pass {}
/// to clear; not thread-safe.
void set_sync_observer(
    std::function<void(const std::filesystem::path&)> observer);

class DaxNamespace {
 public:
  /// Binds `dir` (created if absent) to `memory` of `machine`.
  /// `emulated_pmem` marks DRAM-backed namespaces (pmem0/pmem1 style).
  DaxNamespace(std::string name, std::filesystem::path dir,
               const simkit::Machine& machine, simkit::MemoryId memory,
               bool emulated_pmem);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const std::filesystem::path& path() const noexcept {
    return dir_;
  }
  [[nodiscard]] simkit::MemoryId memory() const noexcept { return memory_; }
  [[nodiscard]] PersistenceDomain domain() const noexcept { return domain_; }
  [[nodiscard]] bool durable() const noexcept {
    return core::durable(domain_);
  }

  [[nodiscard]] std::uint64_t capacity_bytes() const noexcept {
    return capacity_;
  }
  [[nodiscard]] std::uint64_t used_bytes() const noexcept { return used_; }
  [[nodiscard]] std::uint64_t available_bytes() const noexcept {
    return capacity_ > used_ ? capacity_ - used_ : 0;
  }

  /// Creates a pool file inside the namespace.  Throws pmemkit::PoolError
  /// when capacity would be exceeded, or when the domain is not durable and
  /// `allow_volatile` is false.
  std::unique_ptr<pmemkit::ObjectPool> create_pool(
      const std::string& file, std::string_view layout, std::uint64_t size,
      bool allow_volatile = false,
      pmemkit::PoolOptions options = pmemkit::PoolOptions());

  /// Opens an existing pool file of this namespace.
  std::unique_ptr<pmemkit::ObjectPool> open_pool(
      const std::string& file, std::string_view layout,
      pmemkit::PoolOptions options = pmemkit::PoolOptions());

  /// Resizes an open pool that lives in this namespace, enforcing device
  /// capacity on grow and reclaiming it on shrink.  Forwards to
  /// pmemkit::ObjectPool::resize (same quiesce/crash-safety contract); the
  /// accounting uses the pool's actual size afterwards, since a shrink
  /// rounds up to a heap-span boundary.
  void resize_pool(pmemkit::ObjectPool& pool, std::uint64_t new_size);

  /// Deletes a pool file, reclaiming capacity.
  void remove_pool(const std::string& file);

  /// Copies an external file into the namespace as `file`, enforcing
  /// capacity (used by pool migration).  Returns the destination path.
  std::filesystem::path import_file(const std::filesystem::path& src,
                                    const std::string& file);

  /// True when `file` exists in this namespace.
  [[nodiscard]] bool pool_exists(const std::string& file) const;

 private:
  [[nodiscard]] std::filesystem::path file_path(const std::string& file)
      const;
  void rescan_used();

  std::string name_;
  std::filesystem::path dir_;
  simkit::MemoryId memory_;
  PersistenceDomain domain_;
  std::uint64_t capacity_ = 0;
  std::uint64_t used_ = 0;
};

}  // namespace cxlpmem::core
