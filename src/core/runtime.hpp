// core/runtime.hpp — CxlPmemRuntime: the paper's practical approach as an
// API.
//
// One object wires the whole story together:
//   * a machine model (Setup #1 / #2 or custom);
//   * CXL expanders exposed EITHER as DAX namespaces for App-Direct PMem
//     programming (the /mnt/pmem2 of Figure 2), OR onlined as CPU-less NUMA
//     nodes for Memory-Mode expansion (numactl --membind=2), or both;
//   * socket DRAM optionally exposed as *emulated* PMem namespaces
//     (/mnt/pmem0, /mnt/pmem1) the way the paper emulates remote PMem;
//   * attached cxlsim::Type3Device instances so namespace creation can
//     cross-check device capacity/persistence through the mailbox, and
//     namespace labels land in the device LSA.
//
// The punchline the runtime demonstrates: moving a PMDK-style application
// from Optane to CXL is *just a namespace choice* — same pools, same
// transactions, same recovery.
#pragma once

#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/dax.hpp"
#include "core/persist_domain.hpp"
#include "cxlsim/cxlsim.hpp"
#include "numakit/numakit.hpp"
#include "simkit/profiles.hpp"

namespace cxlpmem::core {

/// How one memory device is exposed to software.
struct Exposure {
  simkit::MemoryId memory = simkit::kInvalidId;
  /// Non-empty: create a DAX namespace with this name (e.g. "pmem2").
  std::string dax_name;
  /// Expose as a CPU-less NUMA node (Memory Mode).  Link-attached only.
  bool memory_mode = false;
  /// DRAM-backed namespace used as emulated PMem (pmem0/pmem1 style).
  bool emulated_pmem = false;
};

class Runtime {
 public:
  /// Takes ownership of the machine description.  `base_dir` hosts the
  /// namespace directories (base_dir/mnt/<name>).
  Runtime(simkit::Machine machine, std::vector<Exposure> exposures,
          std::filesystem::path base_dir);

  // Internal components hold pointers into this object; it stays put.
  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  [[nodiscard]] const simkit::Machine& machine() const noexcept {
    return machine_;
  }
  [[nodiscard]] const numakit::NumaTopology& topology() const noexcept {
    return topology_;
  }

  // --- App-Direct ------------------------------------------------------------
  [[nodiscard]] DaxNamespace& dax(const std::string& name);
  [[nodiscard]] const DaxNamespace& dax(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> dax_names() const;

  // --- Memory Mode -------------------------------------------------------------
  /// NUMA node id a memory device is onlined as, or -1.
  [[nodiscard]] int node_of_memory(simkit::MemoryId memory) const {
    return topology_.node_of_memory(memory);
  }

  // --- device integration ------------------------------------------------------
  /// Attaches a modelled CXL device to a machine memory id.  Capacity must
  /// match; the namespace label (if a DAX exposure exists) is written to
  /// the device LSA.
  void attach_device(simkit::MemoryId memory,
                     std::shared_ptr<cxlsim::Type3Device> device);
  [[nodiscard]] cxlsim::Type3Device* device(simkit::MemoryId memory);

  /// Persistence domain of a memory device, preferring live device state
  /// (battery health via mailbox) over the static machine description.
  [[nodiscard]] PersistenceDomain domain_of(simkit::MemoryId memory) const;

  [[nodiscard]] const std::filesystem::path& base_dir() const noexcept {
    return base_dir_;
  }

 private:
  simkit::Machine machine_;
  std::filesystem::path base_dir_;
  std::vector<Exposure> exposures_;
  numakit::NumaTopology topology_;
  std::map<std::string, std::unique_ptr<DaxNamespace>> namespaces_;
  std::map<simkit::MemoryId, std::shared_ptr<cxlsim::Type3Device>> devices_;
};

/// Setup #1 wired the way the paper runs it: pmem0/pmem1 emulated on the
/// DDR5 sockets, pmem2 on the battery-backed CXL FPGA (also onlined as NUMA
/// node 2), FPGA device model attached.
struct SetupOneRuntime {
  simkit::profiles::SetupOne ids;  ///< machine ids (machine itself is moved)
  std::unique_ptr<Runtime> runtime;
};
[[nodiscard]] SetupOneRuntime make_setup_one_runtime(
    const std::filesystem::path& base_dir);

/// Setup #2 wired the way the paper runs it: no CXL device — pmem0/pmem1
/// emulated on the two DDR4 sockets (Figure 3's local/remote PMem runs).
struct SetupTwoRuntime {
  simkit::profiles::SetupTwo ids;  ///< machine ids (machine itself is moved)
  std::unique_ptr<Runtime> runtime;
};
[[nodiscard]] SetupTwoRuntime make_setup_two_runtime(
    const std::filesystem::path& base_dir);

}  // namespace cxlpmem::core
