// core/migrate.hpp — pool migration between persistence tiers.
//
// The industry problem the paper anticipates (and Intel documents in the
// "Migration from Direct-Attached Optane to CXL-Attached Memory" brief,
// paper ref [22]): Optane is discontinued, PMDK applications must move.
// Because pmemkit pools are position-independent (object ids are offsets),
// migration is a verified file copy plus namespace accounting — the
// programming model does not change at all.  migrate_pool() performs the
// copy, validates both ends, and reports what changed about durability.
#pragma once

#include <cstdint>
#include <string>

#include "core/dax.hpp"

namespace cxlpmem::core {

struct MigrationReport {
  std::uint64_t bytes_copied = 0;
  PersistenceDomain source_domain = PersistenceDomain::Volatile;
  PersistenceDomain destination_domain = PersistenceDomain::Volatile;
  std::uint64_t pool_id = 0;      ///< preserved across migration
  std::uint64_t object_count = 0; ///< preserved across migration
  /// True when the move *improved* durability (e.g. emulated-PMem -> battery
  /// -backed CXL) — the paper's recommended direction.
  [[nodiscard]] bool durability_preserved() const noexcept {
    return !durable(source_domain) || durable(destination_domain);
  }
};

/// Migrates pool `file` (layout `layout`) from namespace `src` to `dst`.
/// The source is left intact (callers delete it after verifying).  Throws
/// pmemkit::PoolError on validation or capacity failure.
MigrationReport migrate_pool(DaxNamespace& src, DaxNamespace& dst,
                             const std::string& file,
                             std::string_view layout);

}  // namespace cxlpmem::core
