// tierkv/codec.hpp — the compression seam of the tiered KV cache.
//
// Cold values are stored as self-describing *blocks*: a fixed header
// carrying the codec id, the raw length and a pmemkit::fingerprint64 of the
// raw bytes, followed by the codec's payload.  encode_block() picks the
// stored-raw fallback automatically when a codec fails to shrink its input
// (incompressible values must never grow by more than the header), and
// decode_block() re-fingerprints the decompressed bytes against the header
// stamp — a cold block that decodes to the wrong bytes (bit rot, a codec
// bug, a torn media write that slipped past the pool's own machinery) is
// detected here, before the bad value reaches a caller.
//
// Codecs ship in-tree and dependency-free:
//   identity — memcpy, the A/B baseline;
//   lz       — an LZ4-style byte-oriented LZ77 (greedy hash-table matcher,
//              token = literal-run + match-run nibbles, 16-bit offsets).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace cxlpmem::tierkv {

/// A (de)compressor.  Implementations are stateless and thread-safe —
/// one instance serves every shard and the promotion lane concurrently.
class Codec {
 public:
  virtual ~Codec() = default;
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
  /// Appends the compressed form of `raw` to `out`.  Returns false when the
  /// codec cannot beat the raw size (caller then stores raw) — so `out` may
  /// hold a partial attempt; the caller truncates.
  virtual bool compress(std::string_view raw, std::string& out) const = 0;
  /// Appends exactly `raw_len` decompressed bytes to `out`; false on a
  /// structurally invalid payload.
  virtual bool decompress(std::string_view payload, std::size_t raw_len,
                          std::string& out) const = 0;
};

/// Stable on-media codec ids (block header field — append-only).
enum class CodecId : std::uint8_t {
  Raw = 0,       ///< stored-raw fallback (no codec ran)
  Identity = 1,  ///< identity codec selected explicitly
  Lz = 2,        ///< the LZ4-style block codec
};

/// The fixed block header in front of every cold value.
struct BlockHeader {
  std::uint8_t magic = kMagic;
  std::uint8_t codec = 0;         ///< CodecId
  std::uint16_t reserved = 0;
  std::uint32_t raw_len = 0;
  std::uint64_t raw_fingerprint = 0;  ///< pmemkit::fingerprint64(raw)

  static constexpr std::uint8_t kMagic = 0xCB;  ///< "Cold Block"
};

inline constexpr std::size_t kBlockHeaderBytes = 16;
static_assert(sizeof(BlockHeader) == kBlockHeaderBytes);

/// Outcome of decode_block when the block cannot be trusted.
enum class BlockError {
  BadHeader,       ///< truncated / wrong magic / unknown codec id
  BadPayload,      ///< the codec rejected the payload structure
  FingerprintMismatch,  ///< decoded bytes don't match the header stamp
};

[[nodiscard]] const char* to_string(BlockError e) noexcept;

/// Encodes `raw` as a block using `codec` (nullptr = always store raw).
/// Falls back to stored-raw when the codec does not shrink the value, so
/// the worst case is raw + kBlockHeaderBytes.
[[nodiscard]] std::string encode_block(const Codec* codec,
                                       std::string_view raw);

/// Decodes and *verifies* a block: the decompressed bytes are
/// re-fingerprinted against the header stamp.  On success `out` holds the
/// raw value; on failure the BlockError says what broke.
[[nodiscard]] std::optional<BlockError> decode_block(std::string_view block,
                                                     std::string& out);

/// The raw length a block claims, without decoding it (admission sizing).
[[nodiscard]] std::optional<std::uint32_t> block_raw_len(
    std::string_view block) noexcept;

/// Codec registry: "identity" and "lz".  Unknown names return nullptr.
/// The returned pointer is a process-lifetime singleton — never freed.
[[nodiscard]] const Codec* find_codec(std::string_view name) noexcept;

/// Every registered codec name, for --help strings and flag validation.
[[nodiscard]] std::vector<std::string_view> codec_names();

}  // namespace cxlpmem::tierkv
