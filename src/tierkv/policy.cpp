#include "tierkv/policy.hpp"

namespace cxlpmem::tierkv {

namespace {

/// Four independent counter indices from one 64-bit hash (the count-min
/// rows), spread by golden-ratio remixing.
std::uint64_t spread(std::uint64_t h, int i) noexcept {
  h += static_cast<std::uint64_t>(i + 1) * 0x9E3779B97F4A7C15ull;
  h ^= h >> 33;
  h *= 0xFF51AFD7ED558CCDull;
  h ^= h >> 33;
  return h;
}

}  // namespace

FrequencySketch::FrequencySketch(std::uint64_t expected_entries) {
  std::uint64_t counters = 64;
  while (counters < expected_entries * 8 && counters < (1ull << 26))
    counters <<= 1;
  table_.assign(counters / 2, 0);  // two 4-bit counters per byte
  mask_ = counters - 1;
  sample_period_ = counters * 2;   // ~Caffeine's 10x entries, rounded
}

std::uint32_t FrequencySketch::counter_at(std::uint64_t slot) const noexcept {
  const std::uint8_t byte = table_[slot >> 1];
  return (slot & 1) ? (byte >> 4) : (byte & 0x0F);
}

void FrequencySketch::bump_at(std::uint64_t slot) noexcept {
  std::uint8_t& byte = table_[slot >> 1];
  if (slot & 1) {
    if ((byte >> 4) < 15) byte = static_cast<std::uint8_t>(byte + 0x10);
  } else {
    if ((byte & 0x0F) < 15) byte = static_cast<std::uint8_t>(byte + 0x01);
  }
}

void FrequencySketch::age() noexcept {
  // Halve both nibbles of every byte in one pass: clear each nibble's low
  // bit first so the shift cannot bleed across the boundary.
  for (std::uint8_t& b : table_)
    b = static_cast<std::uint8_t>((b >> 1) & 0x77);
  ++ages_;
}

void FrequencySketch::record(std::uint64_t key_hash) noexcept {
  for (int i = 0; i < 4; ++i) bump_at(spread(key_hash, i) & mask_);
  if (++samples_ >= sample_period_) {
    samples_ = 0;
    age();
  }
}

std::uint32_t FrequencySketch::estimate(std::uint64_t key_hash) const noexcept {
  std::uint32_t best = 15;
  for (int i = 0; i < 4; ++i) {
    const std::uint32_t c = counter_at(spread(key_hash, i) & mask_);
    if (c < best) best = c;
  }
  return best;
}

std::uint32_t ClockRing::acquire() {
  std::uint32_t id;
  if (!free_.empty()) {
    id = free_.back();
    free_.pop_back();
  } else {
    id = static_cast<std::uint32_t>(slots_.size());
    slots_.push_back(Slot{});
  }
  slots_[id] = Slot{.live = true, .referenced = true};
  ++live_;
  return id;
}

void ClockRing::touch(std::uint32_t slot) noexcept {
  if (slot < slots_.size() && slots_[slot].live)
    slots_[slot].referenced = true;
}

void ClockRing::release(std::uint32_t slot) noexcept {
  if (slot >= slots_.size() || !slots_[slot].live) return;
  slots_[slot].live = false;
  free_.push_back(slot);
  --live_;
}

std::uint32_t ClockRing::next_victim() noexcept {
  if (live_ == 0) return kNoSlot;
  // Two sweeps bound the scan: the first clears reference bits, so the
  // second must find an unreferenced live slot.
  for (std::size_t scanned = 0; scanned < 2 * slots_.size(); ++scanned) {
    Slot& s = slots_[hand_];
    hand_ = (hand_ + 1) % slots_.size();
    if (!s.live) continue;
    if (s.referenced) {
      s.referenced = false;  // second chance
      continue;
    }
    return static_cast<std::uint32_t>(&s - slots_.data());
  }
  return kNoSlot;  // unreachable with live_ > 0; belt-and-braces
}

}  // namespace cxlpmem::tierkv
