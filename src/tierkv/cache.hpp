// tierkv/cache.hpp — the tiered DRAM↔CXL KV cache.
//
// The paper's capacity-tier thesis (PAPER §1.3: CXL-attached persistent
// memory is a capacity tier, not a DRAM replacement) executed as the
// LLM-serving workload: hot entries live in a DRAM-resident index/value
// store, every entry's authoritative copy is a compressed, fingerprinted
// block (tierkv/codec.hpp) in a CXL/pmem-backed pool via the existing
// service::DurableMap, and an access-history prefetcher (tierkv/prefetch.hpp)
// promotes cold entries ahead of demand through a background promotion
// lane.  Admission and eviction are W-TinyLFU over CLOCK (tierkv/policy.hpp).
//
// Durability modes:
//   write-through (default, what cxlpmemd runs) — put() lands the
//     compressed block in the cold pool inside the caller's transaction
//     (or its own); the DRAM copy is strictly a cache.  Ack-after-commit
//     semantics are therefore identical to the untiered map: anything
//     acknowledged is durable, kill -9 notwithstanding.
//   write-back (bench/ablation only) — put() may live in DRAM alone until
//     eviction *demotes* it: compress, decode-and-verify the block against
//     the raw bytes, then store — the raw copy is dropped only after the
//     block proved it can reproduce it.
//
// Threading: one owner thread drives puts/gets (the shard worker), the
// promotion lane is a second thread.  One mutex guards all tier state; the
// batch composition API hands that mutex to the caller for the span of a
// server batch so the lane never observes a half-applied transaction.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "api/pool.hpp"
#include "api/result.hpp"
#include "api/runtime.hpp"
#include "service/durable_map.hpp"
#include "tierkv/codec.hpp"
#include "tierkv/policy.hpp"
#include "tierkv/prefetch.hpp"
#include "tierkv/stats.hpp"

namespace cxlpmem::tierkv {

struct TierOptions {
  /// Cold-block codec: "lz" | "identity".  Unknown names are a
  /// constructor-time std::invalid_argument (Errc::InvalidConfig through
  /// the facade).
  std::string codec = "lz";
  /// DRAM tier budget in bytes (index + values + per-entry overhead).
  std::uint64_t dram_bytes = 8ull << 20;
  bool prefetch = true;
  PrefetchOptions prefetch_opts;
  /// Run the promotion lane as a background thread.  Off = predictions
  /// queue up and the owner drains them explicitly (drain_promotions) —
  /// deterministic mode for tests.
  bool background_lane = true;
  /// Predictions beyond this are dropped oldest-first (a stalled lane must
  /// not grow an unbounded queue of stale guesses).
  std::size_t max_promotion_queue = 4096;
  /// Write-back mode (see file header).  The server never enables this.
  bool write_back = false;
};

/// The engine.  Throwing API (pmemkit discipline — it composes under
/// transactions); api::TieredCache below is the Result-based facade.
class TieredCache {
 public:
  /// Binds to `cold` (non-owning, like the DurableMap itself binds its
  /// pool).  The map and its pool must outlive the cache.
  TieredCache(service::DurableMap& cold, TierOptions opts);
  ~TieredCache();
  TieredCache(const TieredCache&) = delete;
  TieredCache& operator=(const TieredCache&) = delete;

  // --- own-transaction operations (thread-safe vs the promotion lane) ------
  void put(std::string_view key, std::string_view value);
  [[nodiscard]] std::optional<std::string> get(std::string_view key);
  bool erase(std::string_view key);
  [[nodiscard]] bool exists(std::string_view key);

  // --- batch composition under a caller-owned transaction ------------------
  // The server folds a burst into one commit: take batch_lock() for the
  // whole burst, run the *_in_tx calls inside the transaction, then
  // commit_staged() after the commit returned (or discard_staged() when it
  // aborted) while still holding the lock.  DRAM-tier effects of mutations
  // are staged so an aborted transaction leaves the DRAM tier exactly as it
  // was — the cache can never serve a value whose commit never happened.
  // Write-through only (write_back + batch composition throws TxMisuse).
  [[nodiscard]] std::unique_lock<std::mutex> batch_lock();
  void put_in_tx(std::string_view key, std::string_view value);
  bool erase_in_tx(std::string_view key);
  [[nodiscard]] std::optional<std::string> get_in_batch(std::string_view key);
  [[nodiscard]] bool exists_in_batch(std::string_view key);
  void commit_staged();
  void discard_staged();

  // --- promotion lane -------------------------------------------------------
  /// Promotes up to `max` queued predictions now, on the calling thread.
  /// Returns how many entries actually moved into DRAM.
  std::size_t drain_promotions(std::size_t max = SIZE_MAX);
  /// Blocks until the promotion queue is empty (bench determinism).
  void quiesce();
  /// Stops the background lane (idempotent; destructor calls it).
  void stop();

  // --- introspection --------------------------------------------------------
  [[nodiscard]] TierStats stats() const;
  [[nodiscard]] std::uint64_t cold_keys() const;
  [[nodiscard]] const TierOptions& options() const noexcept { return opts_; }
  [[nodiscard]] std::string_view codec_name() const noexcept;

 private:
  struct Hot {
    std::string value;
    std::uint32_t slot = 0;
    bool prefetched = false;  ///< promoted by the lane, not yet touched
    bool dirty = false;       ///< write-back: DRAM newer than cold
  };
  using HotMap = std::unordered_map<std::string, Hot>;

  // All private helpers assume mu_ is held.
  void observe_access(std::string_view key);
  void hot_admit(std::string_view key, std::string_view value,
                 bool prefetched, bool dirty);
  void hot_insert(std::string_view key, std::string_view value,
                  bool prefetched, bool dirty);
  void hot_erase(HotMap::iterator it, bool count_demotion);
  bool ensure_room(std::uint64_t need);
  void demote(HotMap::iterator victim);
  void cold_put(std::string_view key, std::string_view value, bool in_tx,
                std::int64_t* d_raw, std::int64_t* d_comp);
  bool cold_erase(std::string_view key, bool in_tx, std::int64_t* d_raw,
                  std::int64_t* d_comp);
  [[nodiscard]] std::optional<std::string> cold_get(std::string_view key);
  void enqueue_predictions(std::vector<std::string> keys);
  std::size_t promote_one_locked(const std::string& key);
  void lane_loop();
  [[nodiscard]] std::uint64_t entry_bytes(std::string_view key,
                                          std::string_view value)
      const noexcept;

  service::DurableMap* cold_;
  TierOptions opts_;
  const Codec* codec_ = nullptr;  ///< nullptr = stored-raw only

  mutable std::mutex mu_;
  HotMap hot_;
  std::vector<const std::string*> slot_keys_;  ///< clock slot → hot_ key
  ClockRing clock_;
  FrequencySketch sketch_;
  Prefetcher prefetcher_;
  std::uint64_t dram_used_ = 0;

  /// Staged DRAM effects of an open batch transaction (apply on commit).
  struct StagedOp {
    std::string key;
    std::optional<std::string> value;  ///< nullopt = erase
    std::int64_t d_raw = 0;
    std::int64_t d_comp = 0;
  };
  std::vector<StagedOp> staged_;

  std::deque<std::string> promo_q_;
  std::condition_variable promo_cv_;
  std::condition_variable quiesce_cv_;
  std::size_t lane_busy_ = 0;
  bool stopping_ = false;
  std::thread lane_;

  TierCounters counters_;
};

/// DRAM budget from the machine topology instead of a hardcoded byte count:
/// asks the placement advisor (TierAdvisor via Runtime::place) to place a
/// volatile hot slice (hot_fraction of the working set, latency-sensitive)
/// against a durable cold slice of the full working set, and returns the
/// bytes the hot slice was actually granted on a volatile tier — shrinking
/// honestly when DRAM is scarce on this machine.  Never returns 0.
[[nodiscard]] std::uint64_t derive_dram_budget(
    api::Runtime& rt, std::uint64_t working_set_bytes,
    double hot_fraction = 0.25);

}  // namespace cxlpmem::tierkv

namespace cxlpmem::api {

/// api::TieredCache — the Result-based facade on Runtime for the tiered
/// cache: one call owns the cold pool, the durable map and the engine.
struct TierSpec {
  PoolSpec pool;               ///< cold pool (created/opened on `ns`)
  std::string codec = "lz";
  /// DRAM budget; 0 = derive from the machine via TierAdvisor::place.
  std::uint64_t dram_bytes = 0;
  /// Sizing hint used when dram_bytes == 0.
  std::uint64_t working_set_bytes = 64ull << 20;
  bool prefetch = true;
  bool background_lane = true;
};

class TieredCache {
 public:
  /// Opens (or creates) the cold pool on namespace `ns` and builds the
  /// tier on it.  InvalidConfig for unknown codecs; pool errors as usual.
  [[nodiscard]] static Result<TieredCache> open(Runtime& rt,
                                                std::string_view ns,
                                                std::string_view layout,
                                                TierSpec spec);

  TieredCache(TieredCache&&) noexcept;
  TieredCache& operator=(TieredCache&&) noexcept;
  ~TieredCache();

  [[nodiscard]] Result<void> put(std::string_view key,
                                 std::string_view value);
  [[nodiscard]] Result<std::optional<std::string>> get(std::string_view key);
  [[nodiscard]] Result<bool> erase(std::string_view key);
  [[nodiscard]] Result<bool> exists(std::string_view key);

  [[nodiscard]] tierkv::TierStats stats() const;
  /// The engine (throwing API, batch composition, drain/quiesce) and the
  /// cold pool — the documented escape hatches, same contract as
  /// Pool::pmem().
  [[nodiscard]] tierkv::TieredCache& engine() noexcept;
  [[nodiscard]] Pool& pool() noexcept;

 private:
  struct State;
  explicit TieredCache(std::unique_ptr<State> state);
  std::unique_ptr<State> state_;
};

}  // namespace cxlpmem::api
