#include "tierkv/prefetch.hpp"

#include <algorithm>
#include <cctype>

namespace cxlpmem::tierkv {

namespace {

std::uint64_t fnv1a(std::string_view s) noexcept {
  std::uint64_t h = 14695981039346656037ull;
  for (const char c : s)
    h = (h ^ static_cast<unsigned char>(c)) * 1099511628211ull;
  return h;
}

constexpr std::size_t kMaxIndexDigits = 12;  // 1e12 blocks is not a run
constexpr std::size_t kScoreTable = 64;

}  // namespace

KeyShape split_key(std::string_view key) {
  std::size_t digits = 0;
  while (digits < key.size() &&
         (std::isdigit(static_cast<unsigned char>(
             key[key.size() - 1 - digits])) != 0))
    ++digits;
  KeyShape shape;
  if (digits == 0 || digits > kMaxIndexDigits || digits == key.size()) {
    shape.prefix.assign(key);
    return shape;
  }
  shape.prefix.assign(key.substr(0, key.size() - digits));
  std::uint64_t idx = 0;
  for (const char c : key.substr(key.size() - digits))
    idx = idx * 10 + static_cast<std::uint64_t>(c - '0');
  shape.index = idx;
  shape.numeric = true;
  return shape;
}

Prefetcher::Prefetcher(PrefetchOptions opts) : opts_(opts) {
  if (opts_.ring == 0) opts_.ring = 1;
  if (opts_.run_threshold < 2) opts_.run_threshold = 2;
  ring_.resize(opts_.ring);
  predicted_.assign(std::max<std::size_t>(opts_.ring * 2, 16), 0);
  scores_.resize(kScoreTable);
}

bool Prefetcher::recently_predicted(std::uint64_t key_hash) const noexcept {
  return std::find(predicted_.begin(), predicted_.end(), key_hash) !=
         predicted_.end();
}

Prefetcher::PrefixScore& Prefetcher::score_of(std::uint64_t prefix_hash) {
  PrefixScore& s = scores_[prefix_hash % kScoreTable];
  if (s.hash != prefix_hash) {
    // Direct-mapped: a new prefix evicts the old one's history.
    s = PrefixScore{.hash = prefix_hash, .useful = 0, .wasted = 0};
  }
  return s;
}

std::vector<std::string> Prefetcher::observe(std::string_view key) {
  const KeyShape shape = split_key(key);
  const std::uint64_t prefix_hash = fnv1a(shape.prefix);
  const std::uint64_t key_hash = fnv1a(key);

  // Run detection BEFORE inserting the current access: the ring must hold
  // the predecessors (index-1, index-2, ...) for this access to extend a
  // run.  threshold = N means this access plus N-1 ring predecessors.
  std::size_t run = 0;
  if (shape.numeric) {
    for (std::size_t back = 1; back < opts_.run_threshold; ++back) {
      if (shape.index < back) break;
      const std::uint64_t want = shape.index - back;
      bool found = false;
      for (std::size_t i = 0; i < ring_fill_; ++i) {
        const Recent& r = ring_[i];
        if (r.numeric && r.prefix_hash == prefix_hash && r.index == want) {
          found = true;
          break;
        }
      }
      if (!found) break;
      ++run;
    }
  }

  ring_[ring_pos_] = Recent{.prefix_hash = prefix_hash,
                            .index = shape.index,
                            .key_hash = key_hash,
                            .numeric = shape.numeric};
  ring_pos_ = (ring_pos_ + 1) % ring_.size();
  ring_fill_ = std::min(ring_fill_ + 1, ring_.size());

  std::vector<std::string> out;
  if (!shape.numeric || run + 1 < opts_.run_threshold) return out;
  ++runs_detected_;

  // Throttle prefixes whose predictions keep going unused; a run is always
  // allowed at least 1-ahead so a prefix can earn trust back.
  std::size_t depth = opts_.depth;
  {
    const PrefixScore& s = score_of(prefix_hash);
    const std::uint32_t total = s.useful + s.wasted;
    if (total >= 16 &&
        static_cast<double>(s.useful) <
            opts_.min_accuracy * static_cast<double>(total))
      depth = 1;
  }

  out.reserve(depth);
  for (std::size_t ahead = 1; ahead <= depth; ++ahead) {
    const std::uint64_t idx = shape.index + ahead;
    std::string next = shape.prefix + std::to_string(idx);
    const std::uint64_t next_hash = fnv1a(next);
    if (recently_predicted(next_hash)) continue;
    predicted_[predicted_pos_] = next_hash;
    predicted_pos_ = (predicted_pos_ + 1) % predicted_.size();
    out.push_back(std::move(next));
  }
  return out;
}

void Prefetcher::credit(std::string_view key, bool useful) {
  const KeyShape shape = split_key(key);
  PrefixScore& s = score_of(fnv1a(shape.prefix));
  if (useful)
    ++s.useful;
  else
    ++s.wasted;
  // Keep the window sliding so old behaviour ages out.
  if (s.useful + s.wasted >= 256) {
    s.useful /= 2;
    s.wasted /= 2;
  }
}

}  // namespace cxlpmem::tierkv
