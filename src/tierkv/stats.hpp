// tierkv/stats.hpp — telemetry for the tiered DRAM↔CXL KV cache.
//
// One counters struct shared by the cache engine, the service INFO block
// and bench/micro_tierkv, so the numbers the daemon reports are the numbers
// the bench plots.  Counters are atomics (the background promotion lane and
// the owner thread both account), snapshot() flattens them into the plain
// TierStats value that crosses API boundaries.
#pragma once

#include <atomic>
#include <cstdint>

namespace cxlpmem::tierkv {

/// A point-in-time view of the tier's behaviour.
struct TierStats {
  std::uint64_t hits = 0;           ///< GETs served from the DRAM tier
  std::uint64_t misses = 0;         ///< GETs that had to decode a cold block
  std::uint64_t promotions = 0;     ///< cold→DRAM moves (demand + prefetch)
  std::uint64_t demotions = 0;      ///< DRAM entries evicted to cold-only
  std::uint64_t prefetch_hits = 0;  ///< hits on entries a prefetch promoted
  std::uint64_t prefetch_issued = 0;  ///< promotion-lane requests enqueued
  std::uint64_t bytes_moved = 0;    ///< raw bytes promoted + demoted
  std::uint64_t raw_bytes = 0;      ///< uncompressed bytes in the cold tier
  std::uint64_t compressed_bytes = 0;  ///< what those bytes occupy on media
  std::uint64_t dram_bytes_used = 0;   ///< current DRAM-tier footprint
  std::uint64_t dram_bytes_budget = 0; ///< the budget sizing chose
  std::uint64_t dram_entries = 0;      ///< entries resident in DRAM

  /// raw/compressed for the cold tier — >1 means the codec is paying for
  /// itself; exactly 1 with the identity codec.
  [[nodiscard]] double compression_ratio() const noexcept {
    return compressed_bytes == 0
               ? 1.0
               : static_cast<double>(raw_bytes) /
                     static_cast<double>(compressed_bytes);
  }
  /// hits / (hits + misses); 1.0 on an idle cache so floors don't trip on
  /// zero traffic.
  [[nodiscard]] double hit_rate() const noexcept {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 1.0
                      : static_cast<double>(hits) / static_cast<double>(total);
  }
};

/// The live (atomic) counterpart the engine mutates.
struct TierCounters {
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> misses{0};
  std::atomic<std::uint64_t> promotions{0};
  std::atomic<std::uint64_t> demotions{0};
  std::atomic<std::uint64_t> prefetch_hits{0};
  std::atomic<std::uint64_t> prefetch_issued{0};
  std::atomic<std::uint64_t> bytes_moved{0};
  std::atomic<std::uint64_t> raw_bytes{0};
  std::atomic<std::uint64_t> compressed_bytes{0};
  std::atomic<std::uint64_t> dram_bytes_used{0};
  std::atomic<std::uint64_t> dram_entries{0};

  [[nodiscard]] TierStats snapshot(std::uint64_t dram_budget) const {
    TierStats s;
    s.hits = hits.load(std::memory_order_relaxed);
    s.misses = misses.load(std::memory_order_relaxed);
    s.promotions = promotions.load(std::memory_order_relaxed);
    s.demotions = demotions.load(std::memory_order_relaxed);
    s.prefetch_hits = prefetch_hits.load(std::memory_order_relaxed);
    s.prefetch_issued = prefetch_issued.load(std::memory_order_relaxed);
    s.bytes_moved = bytes_moved.load(std::memory_order_relaxed);
    s.raw_bytes = raw_bytes.load(std::memory_order_relaxed);
    s.compressed_bytes = compressed_bytes.load(std::memory_order_relaxed);
    s.dram_bytes_used = dram_bytes_used.load(std::memory_order_relaxed);
    s.dram_entries = dram_entries.load(std::memory_order_relaxed);
    s.dram_bytes_budget = dram_budget;
    return s;
  }
};

}  // namespace cxlpmem::tierkv
