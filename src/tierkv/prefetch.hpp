// tierkv/prefetch.hpp — access-history prefetcher for the tiered cache.
//
// The workload this subsystem exists for (LLM-serving KV caches) has a
// telltale shape: *which* sequence is read next is zipfian-skewed, but
// *within* a sequence the blocks are read in order — "seq42/b0, seq42/b1,
// seq42/b2, ...".  The prefetcher exploits exactly that:
//
//   * a ring of the most recent accesses, each split into (prefix, index)
//     when the key ends in digits ("seq42/b7" → "seq42/b" + 7);
//   * sequential-run detection: when the ring holds `run_threshold`
//     consecutive indices of one prefix ending at the current access, the
//     next `depth` keys of that run are predicted;
//   * per-key recency/frequency: a prediction already seen recently is
//     suppressed (re-predicting a resident key wastes a promotion-lane
//     slot), and each prefix tracks how often its runs actually continued,
//     throttling prefixes whose predictions keep missing.
//
// The prefetcher is pure bookkeeping: observe() returns predicted keys and
// the cache decides what to do with them (enqueue on the promotion lane).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace cxlpmem::tierkv {

struct PrefetchOptions {
  std::size_t ring = 64;       ///< recent accesses remembered
  std::size_t run_threshold = 3;  ///< consecutive indices to call it a run
  std::size_t depth = 8;       ///< keys predicted ahead of a detected run
  /// A prefix whose predictions were useful fewer than this fraction of the
  /// time gets throttled to 1-ahead until it earns trust back.
  double min_accuracy = 0.25;
};

/// Splits "seq42/b7" into prefix "seq42/b" and index 7.  Keys without a
/// trailing decimal index (or with an absurdly long one) don't participate
/// in run detection — they still land in the ring for recency suppression.
struct KeyShape {
  std::string prefix;
  std::uint64_t index = 0;
  bool numeric = false;
};
[[nodiscard]] KeyShape split_key(std::string_view key);

class Prefetcher {
 public:
  explicit Prefetcher(PrefetchOptions opts = {});

  /// Records a demand access and returns the keys (if any) this access
  /// makes worth promoting ahead of demand.
  [[nodiscard]] std::vector<std::string> observe(std::string_view key);

  /// Feedback from the cache: a predicted key was (or wasn't) touched by a
  /// demand access while DRAM-resident.  Drives per-prefix throttling.
  void credit(std::string_view key, bool useful);

  [[nodiscard]] std::uint64_t runs_detected() const noexcept {
    return runs_detected_;
  }

 private:
  struct Recent {
    std::uint64_t prefix_hash = 0;
    std::uint64_t index = 0;
    std::uint64_t key_hash = 0;
    bool numeric = false;
  };
  struct PrefixScore {
    std::uint64_t hash = 0;
    std::uint32_t useful = 0;
    std::uint32_t wasted = 0;
  };

  [[nodiscard]] bool recently_predicted(std::uint64_t key_hash) const noexcept;
  [[nodiscard]] PrefixScore& score_of(std::uint64_t prefix_hash);

  PrefetchOptions opts_;
  std::vector<Recent> ring_;
  std::size_t ring_pos_ = 0;
  std::size_t ring_fill_ = 0;
  std::vector<std::uint64_t> predicted_;  ///< ring of recent predictions
  std::size_t predicted_pos_ = 0;
  std::vector<PrefixScore> scores_;  ///< small direct-mapped table
  std::uint64_t runs_detected_ = 0;
};

}  // namespace cxlpmem::tierkv
