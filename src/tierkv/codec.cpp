#include "tierkv/codec.hpp"

#include <algorithm>
#include <cstring>

#include "pmemkit/checksum.hpp"

namespace cxlpmem::tierkv {

namespace {

// --- identity ---------------------------------------------------------------

class IdentityCodec final : public Codec {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "identity";
  }
  bool compress(std::string_view raw, std::string& out) const override {
    out.append(raw);
    return true;  // "shrunk to the same size": stored as-is by choice
  }
  bool decompress(std::string_view payload, std::size_t raw_len,
                  std::string& out) const override {
    if (payload.size() != raw_len) return false;
    out.append(payload);
    return true;
  }
};

// --- lz ---------------------------------------------------------------------
//
// LZ4-style sequences: each sequence is
//   token        1 byte — high nibble = literal count, low = match len - 4
//   [lit ext]    255-run extension bytes while a nibble saturates at 15
//   literals     `literal count` bytes copied verbatim
//   offset       2 bytes little-endian (1..65535 back-distance)
//   [match ext]  extension bytes for the match length
// The final sequence carries literals only (no offset).  Matching is greedy
// over a 4-byte hash table — one probe per position, last-writer-wins, the
// classic fast-LZ4 shape.  No window beyond 64 KiB (16-bit offsets).

constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kHashBits = 13;
constexpr std::size_t kHashSize = 1u << kHashBits;

std::uint32_t hash4(const char* p) noexcept {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - kHashBits);
}

void emit_run_length(std::string& out, std::size_t extra) {
  while (extra >= 255) {
    out.push_back(static_cast<char>(0xFF));
    extra -= 255;
  }
  out.push_back(static_cast<char>(extra));
}

void emit_sequence(std::string& out, const char* lit, std::size_t lit_len,
                   std::size_t match_len, std::size_t offset) {
  const std::size_t lit_nib = lit_len < 15 ? lit_len : 15;
  const bool has_match = match_len >= kMinMatch;
  const std::size_t match_code = has_match ? match_len - kMinMatch : 0;
  const std::size_t match_nib = has_match ? (match_code < 15 ? match_code : 15)
                                          : 0;
  out.push_back(static_cast<char>((lit_nib << 4) | match_nib));
  if (lit_nib == 15) emit_run_length(out, lit_len - 15);
  out.append(lit, lit_len);
  if (!has_match) return;
  out.push_back(static_cast<char>(offset & 0xFF));
  out.push_back(static_cast<char>((offset >> 8) & 0xFF));
  if (match_nib == 15) emit_run_length(out, match_code - 15);
}

class LzCodec final : public Codec {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "lz";
  }

  bool compress(std::string_view raw, std::string& out) const override {
    const std::size_t start = out.size();
    const char* base = raw.data();
    const std::size_t n = raw.size();
    if (n < kMinMatch + 1) {
      emit_sequence(out, base, n, 0, 0);
      return out.size() - start < n;
    }
    std::uint32_t table[kHashSize];
    std::memset(table, 0xFF, sizeof(table));  // 0xFFFFFFFF = empty
    std::size_t pos = 0, anchor = 0;
    // Stop matching where a 4-byte load would run off the buffer.
    const std::size_t match_limit = n - kMinMatch;
    while (pos <= match_limit) {
      const std::uint32_t h = hash4(base + pos);
      const std::uint32_t cand = table[h];
      table[h] = static_cast<std::uint32_t>(pos);
      if (cand == 0xFFFFFFFFu || pos - cand > 0xFFFF ||
          std::memcmp(base + cand, base + pos, kMinMatch) != 0) {
        ++pos;
        continue;
      }
      // Extend the match as far as the buffer allows.
      std::size_t len = kMinMatch;
      while (pos + len < n && base[cand + len] == base[pos + len]) ++len;
      emit_sequence(out, base + anchor, pos - anchor, len, pos - cand);
      pos += len;
      anchor = pos;
      if (out.size() - start >= n) return false;  // not shrinking: give up
    }
    emit_sequence(out, base + anchor, n - anchor, 0, 0);
    return out.size() - start < n;
  }

  bool decompress(std::string_view payload, std::size_t raw_len,
                  std::string& out) const override {
    const std::size_t start = out.size();
    std::size_t p = 0;
    const auto read_run = [&](std::size_t nibble,
                              std::size_t& len) noexcept -> bool {
      len = nibble;
      if (nibble != 15) return true;
      for (;;) {
        if (p >= payload.size()) return false;
        const auto b = static_cast<std::uint8_t>(payload[p++]);
        len += b;
        if (b != 255) return true;
      }
    };
    while (p < payload.size()) {
      const auto token = static_cast<std::uint8_t>(payload[p++]);
      std::size_t lit_len = 0;
      if (!read_run(token >> 4, lit_len)) return false;
      if (p + lit_len > payload.size()) return false;
      out.append(payload.data() + p, lit_len);
      p += lit_len;
      if (p == payload.size()) break;  // final, literal-only sequence
      if (p + 2 > payload.size()) return false;
      const std::size_t offset =
          static_cast<std::uint8_t>(payload[p]) |
          (static_cast<std::size_t>(static_cast<std::uint8_t>(payload[p + 1]))
           << 8);
      p += 2;
      std::size_t match_code = 0;
      if (!read_run(token & 0xF, match_code)) return false;
      const std::size_t match_len = match_code + kMinMatch;
      const std::size_t produced = out.size() - start;
      if (offset == 0 || offset > produced) return false;
      if (produced + match_len > raw_len) return false;
      // Overlapping copy (offset < match_len is the RLE case): byte loop.
      std::size_t src = out.size() - offset;
      for (std::size_t i = 0; i < match_len; ++i) out.push_back(out[src + i]);
    }
    return out.size() - start == raw_len;
  }
};

const IdentityCodec g_identity;
const LzCodec g_lz;

void store_header(std::string& block, const BlockHeader& h) {
  block.resize(kBlockHeaderBytes);
  std::memcpy(block.data(), &h, kBlockHeaderBytes);
}

bool load_header(std::string_view block, BlockHeader& h) noexcept {
  if (block.size() < kBlockHeaderBytes) return false;
  std::memcpy(&h, block.data(), kBlockHeaderBytes);
  return h.magic == BlockHeader::kMagic;
}

}  // namespace

const char* to_string(BlockError e) noexcept {
  switch (e) {
    case BlockError::BadHeader: return "bad-header";
    case BlockError::BadPayload: return "bad-payload";
    case BlockError::FingerprintMismatch: return "fingerprint-mismatch";
  }
  return "?";
}

std::string encode_block(const Codec* codec, std::string_view raw) {
  BlockHeader h;
  h.raw_len = static_cast<std::uint32_t>(raw.size());
  h.raw_fingerprint = pmemkit::fingerprint64(raw.data(), raw.size());
  std::string block;
  block.reserve(kBlockHeaderBytes + raw.size());
  store_header(block, h);
  if (codec != nullptr && codec->compress(raw, block) &&
      block.size() < kBlockHeaderBytes + raw.size()) {
    BlockHeader stamped = h;
    stamped.codec = static_cast<std::uint8_t>(
        codec == &g_identity ? CodecId::Identity : CodecId::Lz);
    std::memcpy(block.data(), &stamped, kBlockHeaderBytes);
    return block;
  }
  // Stored-raw fallback: the codec failed to shrink (or none was given).
  block.resize(kBlockHeaderBytes);
  block.append(raw);
  return block;
}

std::optional<BlockError> decode_block(std::string_view block,
                                       std::string& out) {
  BlockHeader h;
  if (!load_header(block, h)) return BlockError::BadHeader;
  const std::string_view payload = block.substr(kBlockHeaderBytes);
  out.clear();
  // The reserve is only a hint: a corrupted raw_len must cost a failed
  // decode, not a multi-gigabyte allocation.
  out.reserve(std::min<std::size_t>(h.raw_len, 1u << 20));
  switch (static_cast<CodecId>(h.codec)) {
    case CodecId::Raw:
      if (payload.size() != h.raw_len) return BlockError::BadPayload;
      out.append(payload);
      break;
    case CodecId::Identity:
      if (!g_identity.decompress(payload, h.raw_len, out))
        return BlockError::BadPayload;
      break;
    case CodecId::Lz:
      if (!g_lz.decompress(payload, h.raw_len, out))
        return BlockError::BadPayload;
      break;
    default:
      return BlockError::BadHeader;
  }
  // Verify-on-decompress: the decoded bytes must match the stamp taken
  // before compression — this is the tier's end-to-end integrity check.
  if (pmemkit::fingerprint64(out.data(), out.size()) != h.raw_fingerprint)
    return BlockError::FingerprintMismatch;
  return std::nullopt;
}

std::optional<std::uint32_t> block_raw_len(std::string_view block) noexcept {
  BlockHeader h;
  if (!load_header(block, h)) return std::nullopt;
  return h.raw_len;
}

const Codec* find_codec(std::string_view name) noexcept {
  if (name == "identity") return &g_identity;
  if (name == "lz") return &g_lz;
  return nullptr;
}

std::vector<std::string_view> codec_names() { return {"identity", "lz"}; }

}  // namespace cxlpmem::tierkv
