// tierkv/policy.hpp — admission and eviction machinery for the DRAM tier.
//
// Two cooperating pieces, the W-TinyLFU shape (Caffeine's policy, sized
// down for a per-shard cache):
//
//   FrequencySketch — a count-min sketch with 4-bit counters and periodic
//     halving ("aging"), so frequency estimates track the recent past
//     instead of all history.  The admission filter asks it one question:
//     is the candidate seen more often than the victim the CLOCK hand
//     found?  If not, the candidate stays cold — this is what keeps a scan
//     from flushing the resident hot set.
//
//   ClockRing — second-chance eviction over the DRAM tier's slots.  O(1)
//     amortized, no per-access list splice (an LRU list would serialize the
//     promotion lane against the owner thread on every hit).
//
// Both are DRAM-only, mechanism-free bookkeeping: the cache decides what a
// slot means; the ring only picks victims.
#pragma once

#include <cstdint>
#include <vector>

namespace cxlpmem::tierkv {

/// 4-bit count-min sketch with aging.  `increment` saturates at 15; after
/// `sample_period` increments every counter is halved, so one burst of
/// popularity decays instead of pinning a key hot forever.
class FrequencySketch {
 public:
  /// `expected_entries` sizes the table (~8 counters per entry, rounded up
  /// to a power of two).  Zero is legal (degenerate 64-counter sketch).
  explicit FrequencySketch(std::uint64_t expected_entries);

  void record(std::uint64_t key_hash) noexcept;
  [[nodiscard]] std::uint32_t estimate(std::uint64_t key_hash) const noexcept;

  /// TinyLFU admission: would `candidate` out-earn `victim` in DRAM?
  /// Ties go to the victim (incumbency wins — churn costs a demotion).
  [[nodiscard]] bool admit(std::uint64_t candidate_hash,
                           std::uint64_t victim_hash) const noexcept {
    return estimate(candidate_hash) > estimate(victim_hash);
  }

  [[nodiscard]] std::uint64_t aging_epochs() const noexcept { return ages_; }

 private:
  [[nodiscard]] std::uint32_t counter_at(std::uint64_t slot) const noexcept;
  void bump_at(std::uint64_t slot) noexcept;
  void age() noexcept;

  std::vector<std::uint8_t> table_;  ///< two 4-bit counters per byte
  std::uint64_t mask_ = 0;           ///< counter-index mask (power of two)
  std::uint64_t sample_period_ = 0;
  std::uint64_t samples_ = 0;
  std::uint64_t ages_ = 0;
};

/// Second-chance (CLOCK) victim selection over dense slot ids.  The cache
/// allocates a slot per resident entry (acquire), marks it on every hit
/// (touch), and asks for a victim when it needs room — slots whose
/// reference bit is set get their second chance and are skipped once.
class ClockRing {
 public:
  static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;

  /// Registers a slot (reference bit set — fresh entries get one pass of
  /// grace).  Returns its id.
  std::uint32_t acquire();
  /// Marks `slot` recently used.
  void touch(std::uint32_t slot) noexcept;
  /// Unregisters `slot` (entry erased or demoted by other means).
  void release(std::uint32_t slot) noexcept;
  /// Advances the hand to the next victim: clears reference bits as it
  /// sweeps, returns the first slot found unreferenced (kNoSlot when the
  /// ring is empty).  The caller evicts the entry and then release()s.
  [[nodiscard]] std::uint32_t next_victim() noexcept;

  [[nodiscard]] std::size_t size() const noexcept { return live_; }

 private:
  struct Slot {
    bool live = false;
    bool referenced = false;
  };
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_;
  std::size_t hand_ = 0;
  std::size_t live_ = 0;
};

}  // namespace cxlpmem::tierkv
