#include "tierkv/cache.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "api/runtime.hpp"
#include "api/translate.hpp"
#include "pmemkit/errors.hpp"

namespace cxlpmem::tierkv {

namespace {

std::uint64_t fnv1a(std::string_view s) noexcept {
  std::uint64_t h = 14695981039346656037ull;
  for (const char c : s)
    h = (h ^ static_cast<unsigned char>(c)) * 1099511628211ull;
  return h;
}

/// Per-entry DRAM overhead beyond key+value bytes: hash-map node, clock
/// slot, string headers.  An estimate, but a *charged* estimate — the budget
/// is honest about small entries instead of pretending they are free.
constexpr std::uint64_t kEntryOverhead = 64;

void add_signed(std::atomic<std::uint64_t>& c, std::int64_t d) noexcept {
  c.fetch_add(static_cast<std::uint64_t>(d), std::memory_order_relaxed);
}

}  // namespace

TieredCache::TieredCache(service::DurableMap& cold, TierOptions opts)
    : cold_(&cold),
      opts_(std::move(opts)),
      sketch_(std::max<std::uint64_t>(opts_.dram_bytes / 128, 64)),
      prefetcher_(opts_.prefetch_opts) {
  codec_ = find_codec(opts_.codec);
  if (codec_ == nullptr)
    throw std::invalid_argument("tierkv: unknown codec '" + opts_.codec +
                                "' (registered: identity, lz)");
  if (opts_.dram_bytes == 0)
    throw std::invalid_argument("tierkv: dram_bytes must be non-zero");
  if (opts_.background_lane)
    lane_ = std::thread([this] { lane_loop(); });
}

TieredCache::~TieredCache() { stop(); }

std::string_view TieredCache::codec_name() const noexcept {
  return codec_->name();
}

std::uint64_t TieredCache::entry_bytes(std::string_view key,
                                       std::string_view value)
    const noexcept {
  return key.size() + value.size() + kEntryOverhead;
}

// ---------------------------------------------------------------------------
// DRAM tier plumbing (mu_ held throughout)

void TieredCache::observe_access(std::string_view key) {
  sketch_.record(fnv1a(key));
  if (opts_.prefetch) enqueue_predictions(prefetcher_.observe(key));
}

void TieredCache::hot_insert(std::string_view key, std::string_view value,
                             bool prefetched, bool dirty) {
  auto [it, fresh] = hot_.try_emplace(std::string(key));
  Hot& h = it->second;
  h.value.assign(value);
  h.prefetched = prefetched;
  h.dirty = dirty;
  h.slot = clock_.acquire();
  if (h.slot >= slot_keys_.size()) slot_keys_.resize(h.slot + 1, nullptr);
  slot_keys_[h.slot] = &it->first;
  dram_used_ += entry_bytes(key, value);
  counters_.dram_bytes_used.store(dram_used_, std::memory_order_relaxed);
  counters_.dram_entries.store(hot_.size(), std::memory_order_relaxed);
  (void)fresh;
}

void TieredCache::hot_erase(HotMap::iterator it, bool count_demotion) {
  Hot& h = it->second;
  // A prefetched entry leaving DRAM untouched is a wasted prediction — the
  // feedback that throttles over-eager prefixes.
  if (h.prefetched) prefetcher_.credit(it->first, /*useful=*/false);
  dram_used_ -= entry_bytes(it->first, h.value);
  if (count_demotion) {
    counters_.demotions.fetch_add(1, std::memory_order_relaxed);
    counters_.bytes_moved.fetch_add(h.value.size(),
                                    std::memory_order_relaxed);
  }
  slot_keys_[h.slot] = nullptr;
  clock_.release(h.slot);
  hot_.erase(it);
  counters_.dram_bytes_used.store(dram_used_, std::memory_order_relaxed);
  counters_.dram_entries.store(hot_.size(), std::memory_order_relaxed);
}

void TieredCache::demote(HotMap::iterator victim) {
  Hot& h = victim->second;
  if (h.dirty) {
    // Write-back demotion: the DRAM copy is the only copy.  Compress, then
    // prove the block can reproduce the raw bytes *before* the raw copy is
    // dropped — a codec bug must surface here, not at some future GET.
    std::string block = encode_block(codec_, h.value);
    std::string check;
    if (decode_block(block, check).has_value() || check != h.value)
      block = encode_block(nullptr, h.value);  // stored-raw always verifies
    std::int64_t d_raw = 0;
    std::int64_t d_comp = 0;
    if (const auto prior = cold_->get(victim->first)) {
      d_comp -= static_cast<std::int64_t>(prior->size());
      const auto rl = block_raw_len(*prior);
      d_raw -= static_cast<std::int64_t>(rl ? *rl : prior->size());
    }
    d_raw += static_cast<std::int64_t>(h.value.size());
    d_comp += static_cast<std::int64_t>(block.size());
    cold_->put(victim->first, block);
    add_signed(counters_.raw_bytes, d_raw);
    add_signed(counters_.compressed_bytes, d_comp);
  }
  hot_erase(victim, /*count_demotion=*/true);
}

bool TieredCache::ensure_room(std::uint64_t need) {
  if (need > opts_.dram_bytes) return false;
  while (dram_used_ + need > opts_.dram_bytes) {
    const std::uint32_t v = clock_.next_victim();
    if (v == ClockRing::kNoSlot) return false;
    demote(hot_.find(*slot_keys_[v]));
  }
  return true;
}

void TieredCache::hot_admit(std::string_view key, std::string_view value,
                            bool prefetched, bool dirty) {
  const std::uint64_t need = entry_bytes(key, value);
  if (need > opts_.dram_bytes) return;
  // TinyLFU gate: when admission would evict, the candidate must out-earn
  // the CLOCK victim.  Prefetched promotions skip the gate — a predicted
  // key has no frequency history yet, that is the point of predicting it —
  // and dirty write-back data skips it because it has nowhere else to live.
  if (!prefetched && !dirty && dram_used_ + need > opts_.dram_bytes) {
    const std::uint32_t v = clock_.next_victim();
    if (v == ClockRing::kNoSlot) return;
    if (!sketch_.admit(fnv1a(key), fnv1a(*slot_keys_[v]))) return;
    demote(hot_.find(*slot_keys_[v]));
  }
  if (!ensure_room(need)) return;
  hot_insert(key, value, prefetched, dirty);
}

// ---------------------------------------------------------------------------
// Cold tier plumbing (mu_ held; cold blocks via the codec seam)

void TieredCache::cold_put(std::string_view key, std::string_view value,
                           bool in_tx, std::int64_t* d_raw,
                           std::int64_t* d_comp) {
  const std::string block = encode_block(codec_, value);
  *d_raw = static_cast<std::int64_t>(value.size());
  *d_comp = static_cast<std::int64_t>(block.size());
  if (const auto prior = cold_->get(key)) {
    *d_comp -= static_cast<std::int64_t>(prior->size());
    const auto rl = block_raw_len(*prior);
    *d_raw -= static_cast<std::int64_t>(rl ? *rl : prior->size());
  }
  if (in_tx)
    cold_->put_in_tx(key, block);
  else
    cold_->put(key, block);
}

bool TieredCache::cold_erase(std::string_view key, bool in_tx,
                             std::int64_t* d_raw, std::int64_t* d_comp) {
  const auto prior = cold_->get(key);
  if (!prior) return false;
  *d_comp = -static_cast<std::int64_t>(prior->size());
  const auto rl = block_raw_len(*prior);
  *d_raw = -static_cast<std::int64_t>(rl ? *rl : prior->size());
  return in_tx ? cold_->erase_in_tx(key) : cold_->erase(key);
}

std::optional<std::string> TieredCache::cold_get(std::string_view key) {
  const auto block = cold_->get(key);
  if (!block) return std::nullopt;
  std::string raw;
  if (const auto err = decode_block(*block, raw))
    throw pmemkit::PoolError(
        pmemkit::ErrKind::CorruptImage,
        "tierkv: cold block for key '" + std::string(key) +
            "' failed verification: " + to_string(*err));
  return raw;
}

// ---------------------------------------------------------------------------
// Own-transaction operations

void TieredCache::put(std::string_view key, std::string_view value) {
  std::lock_guard<std::mutex> lk(mu_);
  const std::string k(key);
  sketch_.record(fnv1a(k));
  if (opts_.write_back) {
    if (const auto it = hot_.find(k); it != hot_.end()) {
      dram_used_ -= entry_bytes(k, it->second.value);
      it->second.value.assign(value);
      it->second.dirty = true;
      it->second.prefetched = false;
      dram_used_ += entry_bytes(k, it->second.value);
      clock_.touch(it->second.slot);
      counters_.dram_bytes_used.store(dram_used_, std::memory_order_relaxed);
      ensure_room(0);  // the grown value may have blown the budget
      return;
    }
    hot_admit(k, value, /*prefetched=*/false, /*dirty=*/true);
    if (hot_.count(k) != 0) return;  // lives dirty in DRAM until demoted
  }
  std::int64_t d_raw = 0;
  std::int64_t d_comp = 0;
  cold_put(k, value, /*in_tx=*/false, &d_raw, &d_comp);
  add_signed(counters_.raw_bytes, d_raw);
  add_signed(counters_.compressed_bytes, d_comp);
  if (const auto it = hot_.find(k); it != hot_.end()) {
    dram_used_ -= entry_bytes(k, it->second.value);
    it->second.value.assign(value);
    it->second.dirty = false;
    it->second.prefetched = false;
    dram_used_ += entry_bytes(k, it->second.value);
    clock_.touch(it->second.slot);
    counters_.dram_bytes_used.store(dram_used_, std::memory_order_relaxed);
    ensure_room(0);
  } else {
    // Write-allocate through the same admission filter demand misses use.
    hot_admit(k, value, /*prefetched=*/false, /*dirty=*/false);
  }
}

std::optional<std::string> TieredCache::get(std::string_view key) {
  std::lock_guard<std::mutex> lk(mu_);
  const std::string k(key);
  observe_access(k);
  if (const auto it = hot_.find(k); it != hot_.end()) {
    counters_.hits.fetch_add(1, std::memory_order_relaxed);
    clock_.touch(it->second.slot);
    if (it->second.prefetched) {
      counters_.prefetch_hits.fetch_add(1, std::memory_order_relaxed);
      prefetcher_.credit(k, /*useful=*/true);
      it->second.prefetched = false;
    }
    return it->second.value;
  }
  auto raw = cold_get(k);
  if (!raw) return std::nullopt;  // absent is neither hit nor miss
  counters_.misses.fetch_add(1, std::memory_order_relaxed);
  hot_admit(k, *raw, /*prefetched=*/false, /*dirty=*/false);
  if (hot_.count(k) != 0) {
    counters_.promotions.fetch_add(1, std::memory_order_relaxed);
    counters_.bytes_moved.fetch_add(raw->size(), std::memory_order_relaxed);
  }
  return raw;
}

bool TieredCache::erase(std::string_view key) {
  std::lock_guard<std::mutex> lk(mu_);
  const std::string k(key);
  bool hot_existed = false;
  if (const auto it = hot_.find(k); it != hot_.end()) {
    hot_existed = true;
    hot_erase(it, /*count_demotion=*/false);
  }
  std::int64_t d_raw = 0;
  std::int64_t d_comp = 0;
  const bool cold_erased = cold_erase(k, /*in_tx=*/false, &d_raw, &d_comp);
  if (cold_erased) {
    add_signed(counters_.raw_bytes, d_raw);
    add_signed(counters_.compressed_bytes, d_comp);
  }
  return cold_erased || hot_existed;  // write-back: entry may be hot-only
}

bool TieredCache::exists(std::string_view key) {
  std::lock_guard<std::mutex> lk(mu_);
  const std::string k(key);
  return hot_.count(k) != 0 || cold_->exists(k);
}

// ---------------------------------------------------------------------------
// Batch composition (caller holds batch_lock() and the transaction)

std::unique_lock<std::mutex> TieredCache::batch_lock() {
  if (opts_.write_back)
    throw pmemkit::TxError(
        pmemkit::ErrKind::TxMisuse,
        "tierkv: batch composition requires write-through mode");
  return std::unique_lock<std::mutex>(mu_);
}

void TieredCache::put_in_tx(std::string_view key, std::string_view value) {
  const std::string k(key);
  sketch_.record(fnv1a(k));
  StagedOp op;
  op.key = k;
  op.value.emplace(value);
  cold_put(k, value, /*in_tx=*/true, &op.d_raw, &op.d_comp);
  staged_.push_back(std::move(op));
}

bool TieredCache::erase_in_tx(std::string_view key) {
  const std::string k(key);
  StagedOp op;
  op.key = k;
  if (!cold_erase(k, /*in_tx=*/true, &op.d_raw, &op.d_comp)) return false;
  staged_.push_back(std::move(op));
  return true;
}

std::optional<std::string> TieredCache::get_in_batch(std::string_view key) {
  const std::string k(key);
  // Read-your-writes inside the open batch: the newest staged op for this
  // key wins, and the DRAM tier (which still reflects the pre-batch state)
  // must not be consulted past it.
  for (auto it = staged_.rbegin(); it != staged_.rend(); ++it) {
    if (it->key != k) continue;
    if (!it->value) return std::nullopt;
    counters_.hits.fetch_add(1, std::memory_order_relaxed);
    return it->value;
  }
  observe_access(k);
  if (const auto it = hot_.find(k); it != hot_.end()) {
    counters_.hits.fetch_add(1, std::memory_order_relaxed);
    clock_.touch(it->second.slot);
    if (it->second.prefetched) {
      counters_.prefetch_hits.fetch_add(1, std::memory_order_relaxed);
      prefetcher_.credit(k, /*useful=*/true);
      it->second.prefetched = false;
    }
    return it->second.value;
  }
  // Unstaged keys are untouched by the open transaction, so this decodes
  // committed data — safe to promote even if the batch later aborts.
  auto raw = cold_get(k);
  if (!raw) return std::nullopt;
  counters_.misses.fetch_add(1, std::memory_order_relaxed);
  hot_admit(k, *raw, /*prefetched=*/false, /*dirty=*/false);
  if (hot_.count(k) != 0) {
    counters_.promotions.fetch_add(1, std::memory_order_relaxed);
    counters_.bytes_moved.fetch_add(raw->size(), std::memory_order_relaxed);
  }
  return raw;
}

bool TieredCache::exists_in_batch(std::string_view key) {
  const std::string k(key);
  for (auto it = staged_.rbegin(); it != staged_.rend(); ++it)
    if (it->key == k) return it->value.has_value();
  return hot_.count(k) != 0 || cold_->exists(k);
}

void TieredCache::commit_staged() {
  for (StagedOp& op : staged_) {
    add_signed(counters_.raw_bytes, op.d_raw);
    add_signed(counters_.compressed_bytes, op.d_comp);
    const auto it = hot_.find(op.key);
    if (!op.value) {
      if (it != hot_.end()) hot_erase(it, /*count_demotion=*/false);
      continue;
    }
    if (it != hot_.end()) {
      dram_used_ -= entry_bytes(op.key, it->second.value);
      it->second.value = std::move(*op.value);
      it->second.prefetched = false;
      dram_used_ += entry_bytes(op.key, it->second.value);
      clock_.touch(it->second.slot);
      counters_.dram_bytes_used.store(dram_used_, std::memory_order_relaxed);
    } else {
      hot_admit(op.key, *op.value, /*prefetched=*/false, /*dirty=*/false);
    }
  }
  staged_.clear();
  ensure_room(0);  // grown overwrites may have blown the budget
}

void TieredCache::discard_staged() { staged_.clear(); }

// ---------------------------------------------------------------------------
// Promotion lane

void TieredCache::enqueue_predictions(std::vector<std::string> keys) {
  bool queued = false;
  for (std::string& k : keys) {
    if (hot_.count(k) != 0) continue;  // already resident
    promo_q_.push_back(std::move(k));
    counters_.prefetch_issued.fetch_add(1, std::memory_order_relaxed);
    queued = true;
  }
  // A stalled lane sheds the *oldest* guesses: recent predictions are the
  // ones demand is about to reach.
  while (promo_q_.size() > opts_.max_promotion_queue) promo_q_.pop_front();
  if (queued && lane_.joinable()) promo_cv_.notify_one();
}

std::size_t TieredCache::promote_one_locked(const std::string& key) {
  if (hot_.count(key) != 0) return 0;
  std::optional<std::string> raw;
  try {
    raw = cold_get(key);
  } catch (const pmemkit::Error&) {
    return 0;  // leave the corrupt block for a demand GET to report
  }
  if (!raw) {
    prefetcher_.credit(key, /*useful=*/false);  // predicted past the run
    return 0;
  }
  hot_admit(key, *raw, /*prefetched=*/true, /*dirty=*/false);
  if (hot_.count(key) == 0) {
    prefetcher_.credit(key, /*useful=*/false);
    return 0;
  }
  counters_.promotions.fetch_add(1, std::memory_order_relaxed);
  counters_.bytes_moved.fetch_add(raw->size(), std::memory_order_relaxed);
  return 1;
}

std::size_t TieredCache::drain_promotions(std::size_t max) {
  std::unique_lock<std::mutex> lk(mu_);
  std::size_t promoted = 0;
  for (std::size_t processed = 0; processed < max && !promo_q_.empty();
       ++processed) {
    const std::string key = std::move(promo_q_.front());
    promo_q_.pop_front();
    promoted += promote_one_locked(key);
  }
  if (promo_q_.empty()) quiesce_cv_.notify_all();
  return promoted;
}

void TieredCache::quiesce() {
  std::unique_lock<std::mutex> lk(mu_);
  if (!lane_.joinable()) {
    while (!promo_q_.empty()) {
      const std::string key = std::move(promo_q_.front());
      promo_q_.pop_front();
      promote_one_locked(key);
    }
    return;
  }
  quiesce_cv_.wait(lk,
                   [&] { return promo_q_.empty() && lane_busy_ == 0; });
}

void TieredCache::lane_loop() {
  std::unique_lock<std::mutex> lk(mu_);
  while (true) {
    promo_cv_.wait(lk, [&] { return stopping_ || !promo_q_.empty(); });
    if (stopping_) break;
    const std::string key = std::move(promo_q_.front());
    promo_q_.pop_front();
    lane_busy_ = 1;
    promote_one_locked(key);
    lane_busy_ = 0;
    if (promo_q_.empty()) quiesce_cv_.notify_all();
  }
}

void TieredCache::stop() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stopping_ = true;
  }
  promo_cv_.notify_all();
  quiesce_cv_.notify_all();
  if (lane_.joinable()) lane_.join();
}

// ---------------------------------------------------------------------------
// Introspection

TierStats TieredCache::stats() const {
  return counters_.snapshot(opts_.dram_bytes);
}

std::uint64_t TieredCache::cold_keys() const {
  std::lock_guard<std::mutex> lk(mu_);
  return cold_->size();
}

// ---------------------------------------------------------------------------
// Topology-derived DRAM budget

std::uint64_t derive_dram_budget(api::Runtime& rt,
                                 std::uint64_t working_set_bytes,
                                 double hot_fraction) {
  constexpr std::uint64_t kFloor = 1ull << 20;
  if (hot_fraction <= 0.0 || hot_fraction > 1.0) hot_fraction = 0.25;
  std::uint64_t want = std::max<std::uint64_t>(
      kFloor, static_cast<std::uint64_t>(
                  static_cast<double>(working_set_bytes) * hot_fraction));
  // place() is all-or-nothing per request, so scarcity shows up as an
  // unsatisfied hot slice: halve the ask until the advisor can host it
  // alongside the durable cold slice.
  while (true) {
    std::vector<api::PlacementRequest> reqs;
    reqs.push_back({.label = "tierkv-hot",
                    .bytes = want,
                    .needs_persistence = false,
                    .mlp = 4.0,
                    .read_fraction = 0.9,
                    .hotness = 10.0});
    reqs.push_back({.label = "tierkv-cold",
                    .bytes = working_set_bytes,
                    .needs_persistence = true,
                    .mlp = 8.0,
                    .read_fraction = 0.8,
                    .hotness = 1.0});
    const auto plan = rt.place(std::move(reqs));
    if (!plan.ok()) return want;  // no advisor view — keep the ask
    const api::PlacementDecision* hot = plan->find("tierkv-hot");
    if (hot != nullptr && hot->satisfied) return want;
    if (want <= kFloor) return kFloor;
    want /= 2;
  }
}

}  // namespace cxlpmem::tierkv

// ---------------------------------------------------------------------------
// api::TieredCache — the Result-based facade

namespace cxlpmem::api {

struct TieredCache::State {
  Pool pool;
  service::DurableMap map;
  tierkv::TieredCache tier;

  State(Pool p, tierkv::TierOptions opts)
      : pool(std::move(p)), map(pool.pmem()), tier(map, std::move(opts)) {}
};

TieredCache::TieredCache(std::unique_ptr<State> state)
    : state_(std::move(state)) {}
TieredCache::TieredCache(TieredCache&&) noexcept = default;
TieredCache& TieredCache::operator=(TieredCache&&) noexcept = default;
TieredCache::~TieredCache() = default;

Result<TieredCache> TieredCache::open(Runtime& rt, std::string_view ns,
                                      std::string_view layout,
                                      TierSpec spec) {
  if (tierkv::find_codec(spec.codec) == nullptr)
    return Error{Errc::InvalidConfig,
                 "unknown tier codec '" + spec.codec +
                     "' (registered: identity, lz)"};
  auto pool = rt.open_or_create_pool(ns, layout, spec.pool);
  if (!pool.ok()) return pool.error();
  tierkv::TierOptions opts;
  opts.codec = spec.codec;
  opts.dram_bytes = spec.dram_bytes != 0
                        ? spec.dram_bytes
                        : tierkv::derive_dram_budget(
                              rt, spec.working_set_bytes);
  opts.prefetch = spec.prefetch;
  opts.background_lane = spec.background_lane;
  return wrap([&] {
    return TieredCache(std::make_unique<State>(std::move(pool).value(),
                                               std::move(opts)));
  });
}

Result<void> TieredCache::put(std::string_view key, std::string_view value) {
  return wrap([&] { state_->tier.put(key, value); });
}

Result<std::optional<std::string>> TieredCache::get(std::string_view key) {
  return wrap([&] { return state_->tier.get(key); });
}

Result<bool> TieredCache::erase(std::string_view key) {
  return wrap([&] { return state_->tier.erase(key); });
}

Result<bool> TieredCache::exists(std::string_view key) {
  return wrap([&] { return state_->tier.exists(key); });
}

tierkv::TierStats TieredCache::stats() const { return state_->tier.stats(); }

tierkv::TieredCache& TieredCache::engine() noexcept { return state_->tier; }

Pool& TieredCache::pool() noexcept { return state_->pool; }

}  // namespace cxlpmem::api
