// stream/stream.hpp — umbrella header for STREAM / STREAM-PMem.
#pragma once

#include "stream/arrays.hpp"        // IWYU pragma: export
#include "stream/kernels.hpp"       // IWYU pragma: export
#include "stream/stream_bench.hpp"  // IWYU pragma: export
