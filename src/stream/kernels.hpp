// stream/kernels.hpp — the four STREAM kernels (McCalpin) and their traffic
// characterization.
//
//   Copy :  c[i] = a[i]               2 counted words / iteration
//   Scale:  b[i] = s * c[i]           2
//   Add  :  c[i] = a[i] + b[i]        3
//   Triad:  a[i] = b[i] + s * c[i]    3
//
// Counted bytes follow the STREAM convention (reads + writes of the named
// arrays; the write-allocate RFO is *not* counted but *is* modelled as
// traffic).  The kernels run for real — results are validated the way
// stream.c validates, with the scalar recurrence.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "simkit/bwmodel.hpp"

namespace cxlpmem::stream {

enum class Kernel { Copy, Scale, Add, Triad };

inline constexpr Kernel kAllKernels[] = {Kernel::Copy, Kernel::Scale,
                                         Kernel::Add, Kernel::Triad};

[[nodiscard]] inline std::string to_string(Kernel k) {
  switch (k) {
    case Kernel::Copy: return "Copy";
    case Kernel::Scale: return "Scale";
    case Kernel::Add: return "Add";
    case Kernel::Triad: return "Triad";
  }
  return "?";
}

/// Counted bytes per element per execution of the kernel.
[[nodiscard]] constexpr std::uint64_t counted_bytes_per_element(Kernel k)
    noexcept {
  switch (k) {
    case Kernel::Copy:
    case Kernel::Scale:
      return 2 * sizeof(double);
    case Kernel::Add:
    case Kernel::Triad:
      return 3 * sizeof(double);
  }
  return 0;
}

/// Read/write mix for the bandwidth model.
[[nodiscard]] constexpr simkit::KernelTraffic traffic_for(Kernel k) noexcept {
  switch (k) {
    case Kernel::Copy: return simkit::kernel_traffic::kCopy;
    case Kernel::Scale: return simkit::kernel_traffic::kScale;
    case Kernel::Add: return simkit::kernel_traffic::kAdd;
    case Kernel::Triad: return simkit::kernel_traffic::kTriad;
  }
  return {};
}

/// The STREAM array triple (any backing storage).
struct ArrayView {
  double* a = nullptr;
  double* b = nullptr;
  double* c = nullptr;
  std::uint64_t n = 0;
};

// Chunked kernel bodies (thread workers call these on their [begin, end)).
void copy_chunk(const ArrayView& v, std::uint64_t begin, std::uint64_t end);
void scale_chunk(const ArrayView& v, double s, std::uint64_t begin,
                 std::uint64_t end);
void add_chunk(const ArrayView& v, std::uint64_t begin, std::uint64_t end);
void triad_chunk(const ArrayView& v, double s, std::uint64_t begin,
                 std::uint64_t end);

/// stream.c-style initialization: a = 1, b = 2, c = 0.
void init_arrays(const ArrayView& v);

/// stream.c-style validation after `ntimes` full Copy/Scale/Add/Triad
/// cycles: returns the worst relative error across the three arrays.
[[nodiscard]] double validate(const ArrayView& v, double scalar,
                              int ntimes);

}  // namespace cxlpmem::stream
