// stream/stream_bench.hpp — the STREAM / STREAM-PMem benchmark runner.
//
// Dual accounting, one honest split:
//   * REPORTED bandwidth comes from the deterministic machine model
//     (simkit::BandwidthModel) at the paper's working set (100 M elements),
//     so figures are reproducible on any host;
//   * the kernels ALSO run for real on smaller arrays (heap for Memory-Mode
//     runs, a pmemkit pool for App-Direct runs) and are validated with
//     stream.c's recurrence — catching real bugs in the kernels, the thread
//     pool, and the persistent allocator.
//
// AccessMode mirrors the paper's two classes: MemoryMode = CC-NUMA access
// ("numa#" trends), AppDirect = PMDK access ("pmem#" trends, with the
// calibrated PMDK traffic amplification applied in the model).
#pragma once

#include <array>
#include <cstdint>
#include <filesystem>
#include <vector>

#include "numakit/numakit.hpp"
#include "simkit/bwmodel.hpp"
#include "simkit/profiles.hpp"
#include "stream/arrays.hpp"
#include "stream/kernels.hpp"

namespace cxlpmem::stream {

enum class AccessMode { MemoryMode, AppDirect };

[[nodiscard]] inline std::string to_string(AccessMode m) {
  return m == AccessMode::MemoryMode ? "numa" : "pmem";
}

struct BenchOptions {
  /// Elements per array in the *model* (the paper runs 100 M).
  std::uint64_t model_elements = simkit::profiles::kStreamArrayElements;
  /// Elements per array for the *real* validation run.
  std::uint64_t verify_elements = 1u << 20;
  /// Full Copy/Scale/Add/Triad cycles in the real run.
  int ntimes = 2;
  double scalar = 3.0;
  /// Directory for App-Direct pool files (a DAX mount in the paper).
  std::filesystem::path pmem_dir = std::filesystem::temp_directory_path();
  /// Model-side PMDK cost: extra traffic per counted byte (DESIGN.md §5).
  double pmdk_amplification =
      1.0 / simkit::profiles::kPmdkSoftwareFactor;
  /// Skip the real execution (model only) — for large sweeps.
  bool model_only = false;
};

struct KernelResult {
  double model_gbs = 0.0;  ///< reported (modelled) bandwidth
  double wall_gbs = 0.0;   ///< diagnostic: real-run bandwidth on this host
};

struct StreamResult {
  std::array<KernelResult, 4> kernels;  ///< indexed by Kernel enum value
  double validation_error = 0.0;
  int threads = 0;

  [[nodiscard]] const KernelResult& operator[](Kernel k) const {
    return kernels[static_cast<std::size_t>(k)];
  }
};

class StreamBenchmark {
 public:
  StreamBenchmark(const simkit::Machine& machine, BenchOptions options);

  /// Runs the benchmark with threads placed per `affinity` and arrays
  /// placed per `placement`.
  [[nodiscard]] StreamResult run(const std::vector<simkit::CoreId>& affinity,
                                 const numakit::Placement& placement,
                                 AccessMode mode) const;

  [[nodiscard]] const BenchOptions& options() const noexcept {
    return options_;
  }

 private:
  [[nodiscard]] double model_kernel(
      Kernel kernel, const std::vector<simkit::CoreId>& affinity,
      const numakit::Placement& placement, AccessMode mode) const;

  const simkit::Machine* machine_;
  BenchOptions options_;
};

}  // namespace cxlpmem::stream
