// stream/arrays.hpp — array storage for STREAM: volatile (Memory-Mode runs)
// or persistent (App-Direct / STREAM-PMem runs).
//
// PmemArrays is the Listing-2 code path of the paper: the three arrays are
// POBJ_ALLOC'd out of an ObjectPool whose file lives on a (DAX) path, and a
// root object records their oids so a reopened pool finds them again.
#pragma once

#include <cstdint>
#include <filesystem>
#include <memory>
#include <vector>

#include "pmemkit/pmemkit.hpp"
#include "stream/kernels.hpp"

namespace cxlpmem::stream {

/// Volatile arrays (cache-aligned heap storage).
class HeapArrays {
 public:
  explicit HeapArrays(std::uint64_t n)
      : a_(n, 0.0), b_(n, 0.0), c_(n, 0.0), n_(n) {}

  [[nodiscard]] ArrayView view() noexcept {
    return ArrayView{a_.data(), b_.data(), c_.data(), n_};
  }

 private:
  std::vector<double> a_, b_, c_;
  std::uint64_t n_;
};

/// Pool layout root for STREAM-PMem (the paper's POBJ_LAYOUT of Listing 2).
struct StreamPmemRoot {
  pmemkit::ObjId a;
  pmemkit::ObjId b;
  pmemkit::ObjId c;
  std::uint64_t n;
};

inline constexpr std::uint32_t kStreamArrayType = 0x5354;  // 'ST'

/// Persistent arrays in an ObjectPool (create-or-open, pmemobj_create /
/// pmemobj_open fallback exactly like Listing 2).
class PmemArrays {
 public:
  static constexpr const char* kLayout = "stream-pmem";

  /// Opens (or creates) the pool at `path` sized for `n` elements and
  /// allocates/locates the three arrays.
  PmemArrays(const std::filesystem::path& path, std::uint64_t n);

  [[nodiscard]] ArrayView view();
  [[nodiscard]] pmemkit::ObjectPool& pool() noexcept { return *pool_; }

  /// Flush + fence over all three arrays (persist after a kernel pass).
  void persist_all();

 private:
  std::unique_ptr<pmemkit::ObjectPool> pool_;
  std::uint64_t n_;
};

}  // namespace cxlpmem::stream
