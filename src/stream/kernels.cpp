#include "stream/kernels.hpp"

#include <cmath>

namespace cxlpmem::stream {

void copy_chunk(const ArrayView& v, std::uint64_t begin, std::uint64_t end) {
  const double* __restrict a = v.a;
  double* __restrict c = v.c;
  for (std::uint64_t i = begin; i < end; ++i) c[i] = a[i];
}

void scale_chunk(const ArrayView& v, double s, std::uint64_t begin,
                 std::uint64_t end) {
  const double* __restrict c = v.c;
  double* __restrict b = v.b;
  for (std::uint64_t i = begin; i < end; ++i) b[i] = s * c[i];
}

void add_chunk(const ArrayView& v, std::uint64_t begin, std::uint64_t end) {
  const double* __restrict a = v.a;
  const double* __restrict b = v.b;
  double* __restrict c = v.c;
  for (std::uint64_t i = begin; i < end; ++i) c[i] = a[i] + b[i];
}

void triad_chunk(const ArrayView& v, double s, std::uint64_t begin,
                 std::uint64_t end) {
  const double* __restrict b = v.b;
  const double* __restrict c = v.c;
  double* __restrict a = v.a;
  for (std::uint64_t i = begin; i < end; ++i) a[i] = b[i] + s * c[i];
}

void init_arrays(const ArrayView& v) {
  for (std::uint64_t i = 0; i < v.n; ++i) {
    v.a[i] = 1.0;
    v.b[i] = 2.0;
    v.c[i] = 0.0;
  }
}

double validate(const ArrayView& v, double scalar, int ntimes) {
  // Replay the scalar recurrence stream.c uses.
  double a = 1.0, b = 2.0, c = 0.0;
  for (int t = 0; t < ntimes; ++t) {
    c = a;          // copy
    b = scalar * c; // scale
    c = a + b;      // add
    a = b + scalar * c;  // triad
  }
  double err_a = 0.0, err_b = 0.0, err_c = 0.0;
  for (std::uint64_t i = 0; i < v.n; ++i) {
    err_a += std::fabs(v.a[i] - a);
    err_b += std::fabs(v.b[i] - b);
    err_c += std::fabs(v.c[i] - c);
  }
  const auto n = static_cast<double>(v.n);
  const double rel_a = err_a / n / std::fabs(a);
  const double rel_b = err_b / n / std::fabs(b);
  const double rel_c = err_c / n / std::fabs(c);
  return std::fmax(rel_a, std::fmax(rel_b, rel_c));
}

}  // namespace cxlpmem::stream
