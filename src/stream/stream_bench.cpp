#include "stream/stream_bench.hpp"

#include <atomic>
#include <chrono>
#include <unistd.h>

namespace cxlpmem::stream {

namespace {

/// Unique scratch pool path per App-Direct run.
std::filesystem::path unique_pool_path(const std::filesystem::path& dir) {
  static std::atomic<std::uint64_t> counter{0};
  return dir / ("stream-pmem-" + std::to_string(::getpid()) + "-" +
                std::to_string(counter.fetch_add(1)) + ".pool");
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

StreamBenchmark::StreamBenchmark(const simkit::Machine& machine,
                                 BenchOptions options)
    : machine_(&machine), options_(std::move(options)) {}

double StreamBenchmark::model_kernel(
    Kernel kernel, const std::vector<simkit::CoreId>& affinity,
    const numakit::Placement& placement, AccessMode mode) const {
  std::vector<simkit::TrafficSpec> specs;
  specs.reserve(affinity.size() * placement.shares.size());
  const double amp =
      mode == AccessMode::AppDirect ? options_.pmdk_amplification : 1.0;
  const std::uint64_t working_set =
      3 * options_.model_elements * sizeof(double);
  for (const simkit::CoreId core : affinity) {
    for (const auto& [memory, share] : placement.shares) {
      simkit::TrafficSpec s;
      s.core = core;
      s.memory = memory;
      s.traffic = traffic_for(kernel);
      // An interleaved thread splits its concurrency budget across devices
      // in proportion to each device's page share.
      s.software_factor = share;
      s.traffic_amplification = amp;
      s.working_set_bytes = working_set;
      specs.push_back(s);
    }
  }
  const simkit::BandwidthModel model(*machine_);
  return model.solve(specs).total_gbs;
}

StreamResult StreamBenchmark::run(
    const std::vector<simkit::CoreId>& affinity,
    const numakit::Placement& placement, AccessMode mode) const {
  StreamResult result;
  result.threads = static_cast<int>(affinity.size());

  for (const Kernel k : kAllKernels)
    result.kernels[static_cast<std::size_t>(k)].model_gbs =
        model_kernel(k, affinity, placement, mode);

  if (options_.model_only) return result;

  // --- real execution + validation -----------------------------------------
  const std::uint64_t n = options_.verify_elements;
  std::unique_ptr<HeapArrays> heap;
  std::unique_ptr<PmemArrays> pmem;
  std::filesystem::path pool_path;
  ArrayView view;
  if (mode == AccessMode::AppDirect) {
    pool_path = unique_pool_path(options_.pmem_dir);
    pmem = std::make_unique<PmemArrays>(pool_path, n);
    view = pmem->view();
  } else {
    heap = std::make_unique<HeapArrays>(n);
    view = heap->view();
  }

  numakit::ThreadPool pool(affinity);
  init_arrays(view);

  std::array<double, 4> best_s{};
  best_s.fill(1e30);
  const double s = options_.scalar;
  for (int t = 0; t < options_.ntimes; ++t) {
    const auto timed = [&](Kernel k, auto&& body) {
      const auto t0 = std::chrono::steady_clock::now();
      pool.parallel_for(n, body);
      auto& best = best_s[static_cast<std::size_t>(k)];
      best = std::min(best, seconds_since(t0));
    };
    timed(Kernel::Copy, [&](int, std::uint64_t b, std::uint64_t e) {
      copy_chunk(view, b, e);
    });
    timed(Kernel::Scale, [&](int, std::uint64_t b, std::uint64_t e) {
      scale_chunk(view, s, b, e);
    });
    timed(Kernel::Add, [&](int, std::uint64_t b, std::uint64_t e) {
      add_chunk(view, b, e);
    });
    timed(Kernel::Triad, [&](int, std::uint64_t b, std::uint64_t e) {
      triad_chunk(view, s, b, e);
    });
    if (pmem) pmem->persist_all();  // PMem discipline: results are durable
  }

  result.validation_error = validate(view, s, options_.ntimes);
  for (const Kernel k : kAllKernels) {
    const auto i = static_cast<std::size_t>(k);
    const double bytes = static_cast<double>(counted_bytes_per_element(k)) *
                         static_cast<double>(n);
    result.kernels[i].wall_gbs = bytes / best_s[i] / simkit::kGB;
  }

  if (pmem) {
    pmem.reset();
    std::error_code ec;
    std::filesystem::remove(pool_path, ec);
  }
  return result;
}

}  // namespace cxlpmem::stream
