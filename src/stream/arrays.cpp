#include "stream/arrays.hpp"

namespace cxlpmem::stream {

namespace {

/// Pool file must hold 3 arrays + allocator metadata + lanes.
std::uint64_t pool_size_for(std::uint64_t n) {
  const std::uint64_t data = 3 * n * sizeof(double);
  const std::uint64_t overhead = pmemkit::ObjectPool::min_pool_size() +
                                 16 * pmemkit::kChunkSize;
  return data + data / 4 + overhead;
}

}  // namespace

PmemArrays::PmemArrays(const std::filesystem::path& path, std::uint64_t n)
    : n_(n) {
  // pmemobj_create, falling back to pmemobj_open — Listing 2's main().
  try {
    pool_ = pmemkit::ObjectPool::create(path, kLayout, pool_size_for(n));
  } catch (const pmemkit::PoolError&) {
    pool_ = pmemkit::ObjectPool::open(path, kLayout);
  }

  auto root_oid = pool_->root<StreamPmemRoot>();
  auto* root = pool_->direct(root_oid);
  if (root->n != n) {
    if (root->n != 0)
      throw pmemkit::PoolError(
          "stream pool was created for a different array size");
    // initiate(): POBJ_ALLOC the three arrays and publish them in the root.
    const std::uint64_t bytes = n * sizeof(double);
    pool_->alloc_atomic(bytes, kStreamArrayType, &root->a);
    pool_->alloc_atomic(bytes, kStreamArrayType, &root->b);
    pool_->alloc_atomic(bytes, kStreamArrayType, &root->c);
    root->n = n;
    pool_->persist(&root->n, sizeof(root->n));
  }
}

ArrayView PmemArrays::view() {
  auto* root = pool_->direct(pool_->root<StreamPmemRoot>());
  return ArrayView{static_cast<double*>(pool_->direct(root->a)),
                   static_cast<double*>(pool_->direct(root->b)),
                   static_cast<double*>(pool_->direct(root->c)), n_};
}

void PmemArrays::persist_all() {
  const ArrayView v = view();
  pool_->flush(v.a, v.n * sizeof(double));
  pool_->flush(v.b, v.n * sizeof(double));
  pool_->flush(v.c, v.n * sizeof(double));
  pool_->drain();
}

}  // namespace cxlpmem::stream
