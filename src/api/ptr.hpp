// api/ptr.hpp — the typed persistent programming model of the facade.
//
// Three pieces, mirroring libpmemobj++:
//
//   * type_number<T>() — every persistent type gets a 32-bit type number,
//     derived at compile time from the type's name (specializable through
//     type_number_of<T> when a pool must be shared across differently-
//     compiled binaries).  Allocations made through the typed surface carry
//     it, and every typed dereference checks it — a ptr<T> aimed at a U
//     fails loudly (ErrKind::TypeMismatch) instead of reinterpreting bytes.
//
//   * ptr<T> — a persistent typed pointer (persistent_ptr<T> equivalent).
//     It stores nothing but an ObjId, so it is itself trivially copyable
//     and may live *inside* pool memory; dereference resolves the owning
//     pool through the process-wide open-pool registry, which makes
//     operator->/get() valid only while that pool is open.  Steady-state
//     resolution is served by a thread-local cache invalidated by the
//     registry's open/close generation counter (see pool.hpp), so the
//     read path takes no lock and scans nothing; only the first deref
//     after a pool open/close pays the locked registry walk.
//
//   * p<T> — a field wrapper for mutable members of persistent structs
//     (libpmemobj++ p<> equivalent).  Assignment inside a transaction
//     snapshots the field via Transaction::add_range before the store, so
//     plain `root->count += 1` is undo-logged with no manual add_range;
//     the pool's range coalescing makes repeated writes to the same field
//     free.  Outside a transaction it is a plain store (the caller owns
//     flushing, exactly like a raw field).
#pragma once

#include <cstdint>
#include <string_view>
#include <type_traits>
#include <utility>

#include "pmemkit/oid.hpp"
#include "pmemkit/pool.hpp"

namespace cxlpmem::api {

namespace detail {

/// FNV-1a over the instantiated function signature — a compile-time type
/// fingerprint, stable for a given compiler.  0 (untyped allocations) and
/// ~0u (the any-type iteration wildcard) are remapped.
template <typename T>
consteval std::uint32_t fingerprint_type() noexcept {
  std::uint32_t h = 2166136261u;
  for (const char c : std::string_view(__PRETTY_FUNCTION__))
    h = (h ^ static_cast<unsigned char>(c)) * 16777619u;
  if (h == 0u || h == ~0u) h = 0x7e59ed41u;
  return h;
}

}  // namespace detail

/// Customization point: specialize to pin a stable type number (e.g. when a
/// pool is shared between binaries built by different compilers).
template <typename T>
struct type_number_of {
  static constexpr std::uint32_t value = detail::fingerprint_type<T>();
};

template <typename T>
[[nodiscard]] constexpr std::uint32_t type_number() noexcept {
  return type_number_of<T>::value;
}

/// Persistent typed pointer.  Holds only the ObjId, so it is storable in
/// pool memory; the owning pool is re-resolved on every dereference via the
/// open-pool registry (with a type-number check).  Dereferencing a pointer
/// whose pool has been closed throws pmemkit::PoolError(PoolNotFound);
/// dereferencing null via operator->/operator* throws
/// pmemkit::PoolError(BadOid), while get() returns nullptr.  Dereferencing
/// a pointer whose object was destroyed (and the destroy committed) throws
/// AllocError(InvalidFree) — the liveness bit is checked under the chunk
/// lock.  As with PMEMoids, a slot later reused by a same-typed allocation
/// makes a stale pointer indistinguishable from a fresh one; retiring
/// stale ptrs is the application's contract.
template <typename T>
class ptr {
 public:
  using element_type = T;

  constexpr ptr() noexcept = default;
  explicit constexpr ptr(pmemkit::ObjId oid) noexcept : oid_(oid) {}

  [[nodiscard]] constexpr pmemkit::ObjId oid() const noexcept { return oid_; }
  [[nodiscard]] constexpr bool is_null() const noexcept {
    return oid_.is_null();
  }
  explicit constexpr operator bool() const noexcept { return !is_null(); }

  /// Direct pointer, or nullptr for a null ptr.  Valid only while the
  /// owning pool is open, and only until it is closed.
  [[nodiscard]] T* get() const {
    if (is_null()) return nullptr;
    return resolve();
  }

  [[nodiscard]] T* operator->() const { return resolve(); }
  [[nodiscard]] T& operator*() const { return *resolve(); }

  friend constexpr bool operator==(const ptr& a, const ptr& b) noexcept {
    return a.oid_ == b.oid_;
  }
  friend constexpr bool operator!=(const ptr& a, const ptr& b) noexcept {
    return !(a == b);
  }

 private:
  [[nodiscard]] T* resolve() const {
    pmemkit::ObjectPool* pool = pmemkit::pool_by_id(oid_.pool_id);
    if (pool == nullptr)
      throw pmemkit::PoolError(
          oid_.is_null() ? pmemkit::ErrKind::BadOid
                         : pmemkit::ErrKind::PoolNotFound,
          oid_.is_null() ? "dereference of null ptr<T>"
                         : "ptr<T> dereferenced after its pool was closed");
    return static_cast<T*>(pool->direct_checked(oid_, type_number<T>()));
  }

  pmemkit::ObjId oid_{};
};

static_assert(std::is_trivially_copyable_v<ptr<int>>,
              "ptr<T> must be storable in pool memory");

/// Snapshot-on-write field wrapper for members of persistent structs.
template <typename T>
class p {
  static_assert(std::is_trivially_copyable_v<T>,
                "p<T> fields live in pool memory and must be trivially "
                "copyable");

 public:
  p() noexcept = default;
  p(const T& value) noexcept : value_(value) {}  // NOLINT(runtime/explicit)

  /// Value read — no snapshot, no registry lookup.
  [[nodiscard]] operator T() const noexcept { return value_; }
  [[nodiscard]] const T& get() const noexcept { return value_; }

  p& operator=(const T& value) {
    snapshot();
    value_ = value;
    return *this;
  }
  p& operator=(const p& other) {
    snapshot();
    value_ = other.value_;
    return *this;
  }

  p& operator+=(const T& d) { return *this = static_cast<T>(value_ + d); }
  p& operator-=(const T& d) { return *this = static_cast<T>(value_ - d); }
  p& operator++() { return *this += T{1}; }
  p& operator--() { return *this -= T{1}; }

 private:
  /// Undo-logs this field when it sits inside a pool with an open
  /// transaction on the calling thread.  Writes outside any transaction
  /// (or to a stack copy) degrade to plain stores, matching raw fields.
  /// The hot-path lookup is thread-local (the thread's open-transaction
  /// list), so non-transactional writes and concurrent lanes never touch a
  /// global lock.  Writing a field of pool B from inside pool A's
  /// transaction would silently be neither undo-logged nor flushed — that
  /// is a misuse, detected (via the registry, off the hot path) and
  /// reported as TxError(TxMisuse) instead of corrupting on crash.
  void snapshot() {
    if (pmemkit::ObjectPool* pool = pmemkit::tx_pool_containing(this);
        pool != nullptr) {
      pool->tx_add_range(this, sizeof(*this));
      return;
    }
    if (pmemkit::thread_in_tx() && pmemkit::pool_containing(this) != nullptr)
      throw pmemkit::TxError(
          pmemkit::ErrKind::TxMisuse,
          "p<> write into a pool the calling thread has no open "
          "transaction on (the enclosing transaction belongs to a "
          "different pool)");
  }

  T value_{};
};

// Assignment snapshots, so p<T> is not *trivially* copyable — but its bytes
// are (trivial copy ctor/dtor, standard layout), which is what zeroed
// allocation and undo-log restore rely on.
static_assert(std::is_standard_layout_v<p<std::uint64_t>> &&
                  std::is_trivially_copy_constructible_v<p<std::uint64_t>> &&
                  std::is_trivially_destructible_v<p<std::uint64_t>>,
              "p<T> must be storable in pool memory");

}  // namespace cxlpmem::api
