#include "api/runtime_builder.hpp"

#include <map>
#include <set>

#include "api/translate.hpp"
#include "cxlsim/fpga_proto.hpp"

namespace cxlpmem::api {

namespace core = cxlpmem::core;

void RuntimeBuilder::fail(Errc code, std::string message) {
  if (!error_) error_ = Error{code, std::move(message)};
}

core::Exposure& RuntimeBuilder::exposure_for(simkit::MemoryId m) {
  for (core::Exposure& e : exposures_)
    if (e.memory == m) return e;
  exposures_.push_back(core::Exposure{.memory = m});
  return exposures_.back();
}

RuntimeBuilder& RuntimeBuilder::base_dir(std::filesystem::path dir) {
  base_dir_ = std::move(dir);
  return *this;
}

RuntimeBuilder& RuntimeBuilder::machine(simkit::Machine m) {
  if (machine_.memory_count() > 0 || machine_.socket_count() > 0) {
    fail(Errc::InvalidConfig,
         "machine() would discard sockets/memories already described");
    return *this;
  }
  machine_ = std::move(m);
  return *this;
}

RuntimeBuilder& RuntimeBuilder::socket_dram(SocketDramSpec spec) {
  try {
    const simkit::SocketId socket =
        machine_.add_socket(simkit::SocketDesc{.name = spec.name,
                                               .cores = spec.cores,
                                               .mlp_lines = spec.mlp_lines,
                                               .l3_bytes = spec.l3_bytes,
                                               .base_freq_ghz =
                                                   spec.base_freq_ghz});
    selected_ = machine_.add_memory(
        simkit::MemoryDesc{.name = spec.name + "-dram",
                           .kind = spec.dram_kind,
                           .home_socket = socket,
                           .peak_read_gbs = spec.read_gbs,
                           .peak_write_gbs = spec.write_gbs,
                           .idle_latency_ns = spec.idle_latency_ns,
                           .capacity_bytes = spec.capacity_bytes,
                           .persistent = false});
  } catch (const std::exception& e) {
    fail(Errc::InvalidConfig, e.what());
  }
  return *this;
}

RuntimeBuilder& RuntimeBuilder::upi(UpiSpec spec) {
  try {
    machine_.add_link(simkit::LinkDesc{.name = "upi",
                                       .kind = simkit::LinkKind::Upi,
                                       .a = spec.a,
                                       .b = spec.b,
                                       .peak_tx_gbs = spec.gbs,
                                       .peak_rx_gbs = spec.gbs,
                                       .latency_ns = spec.latency_ns,
                                       .attached = {}});
  } catch (const std::exception& e) {
    fail(Errc::InvalidConfig, e.what());
  }
  return *this;
}

RuntimeBuilder& RuntimeBuilder::cxl_expander(CxlExpanderSpec spec) {
  try {
    const simkit::MemoryId m = machine_.add_memory(
        simkit::MemoryDesc{.name = spec.name,
                           .kind = simkit::MemoryKind::CxlExpander,
                           .home_socket = simkit::kInvalidId,
                           .peak_read_gbs = spec.media_read_gbs,
                           .peak_write_gbs = spec.media_write_gbs,
                           .peak_combined_gbs = spec.combined_gbs,
                           .idle_latency_ns = spec.media_latency_ns,
                           .capacity_bytes = spec.capacity_bytes,
                           .persistent = spec.persistent});
    machine_.add_link(simkit::LinkDesc{.name = spec.name + "-link",
                                       .kind = simkit::LinkKind::PcieCxl,
                                       .a = spec.attach_socket,
                                       .b = simkit::kInvalidId,
                                       .peak_tx_gbs = spec.link_gbs,
                                       .peak_rx_gbs = spec.link_gbs,
                                       .latency_ns = spec.link_latency_ns,
                                       .attached = {m}});
    selected_ = m;
  } catch (const std::exception& e) {
    fail(Errc::InvalidConfig, e.what());
  }
  return *this;
}

RuntimeBuilder& RuntimeBuilder::select_memory(simkit::MemoryId m) {
  if (m < 0 || m >= machine_.memory_count()) {
    fail(Errc::InvalidConfig,
         "select_memory(" + std::to_string(m) + "): no such memory");
    return *this;
  }
  selected_ = m;
  return *this;
}

RuntimeBuilder& RuntimeBuilder::as_emulated_pmem(std::string dax_name) {
  if (selected_ == simkit::kInvalidId) {
    fail(Errc::InvalidConfig, "as_emulated_pmem() before any memory");
    return *this;
  }
  core::Exposure& e = exposure_for(selected_);
  e.dax_name = std::move(dax_name);
  e.emulated_pmem = true;
  return *this;
}

RuntimeBuilder& RuntimeBuilder::as_dax(std::string dax_name) {
  if (selected_ == simkit::kInvalidId) {
    fail(Errc::InvalidConfig, "as_dax() before any memory");
    return *this;
  }
  core::Exposure& e = exposure_for(selected_);
  e.dax_name = std::move(dax_name);
  e.emulated_pmem = false;
  return *this;
}

RuntimeBuilder& RuntimeBuilder::as_memory_mode() {
  if (selected_ == simkit::kInvalidId) {
    fail(Errc::InvalidConfig, "as_memory_mode() before any memory");
    return *this;
  }
  exposure_for(selected_).memory_mode = true;
  return *this;
}

RuntimeBuilder& RuntimeBuilder::attach_device(
    std::shared_ptr<cxlsim::Type3Device> device) {
  if (selected_ == simkit::kInvalidId) {
    fail(Errc::InvalidConfig, "attach_device() before any memory");
    return *this;
  }
  if (device == nullptr) {
    fail(Errc::InvalidConfig, "attach_device(nullptr)");
    return *this;
  }
  devices_.emplace_back(selected_, std::move(device));
  return *this;
}

Result<Runtime> RuntimeBuilder::build() {
  if (error_) return *error_;
  if (machine_.socket_count() == 0)
    return Error{Errc::InvalidConfig, "machine has no sockets"};
  if (base_dir_.empty())
    return Error{Errc::InvalidConfig,
                 "base_dir() is required (hosts the namespace mounts)"};

  // Validate exposures before anything is constructed.
  std::set<std::string> names;
  for (const core::Exposure& e : exposures_) {
    const simkit::MemoryDesc& mem = machine_.memory(e.memory);
    if (!e.dax_name.empty() && !names.insert(e.dax_name).second)
      return Error{Errc::DuplicateNamespace,
                   "namespace name '" + e.dax_name + "' used twice"};
    if (e.memory_mode && mem.home_socket != simkit::kInvalidId)
      return Error{Errc::InvalidConfig,
                   "memory mode on '" + mem.name +
                       "': only link-attached memory can online as a "
                       "CPU-less NUMA node"};
    if (e.emulated_pmem && mem.home_socket == simkit::kInvalidId)
      return Error{Errc::InvalidConfig,
                   "emulated PMem on '" + mem.name +
                       "': emulation marks socket DRAM, not link-attached "
                       "devices"};
  }

  // Validate device attachments against the machine description.
  for (const auto& [memory, device] : devices_) {
    const simkit::MemoryDesc& mem = machine_.memory(memory);
    if (mem.home_socket != simkit::kInvalidId)
      return Error{Errc::InvalidConfig,
                   "attach_device on '" + mem.name +
                       "': devices attach to link-attached memory only"};
    if (device->capacity() != mem.capacity_bytes)
      return Error{Errc::CapacityMismatch,
                   "device '" + device->config().name + "' has " +
                       std::to_string(device->capacity()) +
                       " bytes, machine memory '" + mem.name + "' declares " +
                       std::to_string(mem.capacity_bytes)};
  }

  // Construct.  Residual failures (directory creation, LSA writes) are
  // translated; the machine moves into the runtime, so grab profiles after.
  std::unique_ptr<core::Runtime> rt;
  try {
    rt = std::make_unique<core::Runtime>(std::move(machine_), exposures_,
                                         base_dir_);
  } catch (const std::invalid_argument& e) {
    return Error{Errc::InvalidConfig, e.what()};
  } catch (const pmemkit::Error& e) {
    return translate(e);
  } catch (const std::filesystem::filesystem_error& e) {
    return Error{Errc::IoFailure, e.what()};
  } catch (const std::exception& e) {
    return Error{Errc::Internal, e.what()};
  }
  for (auto& [memory, device] : devices_) {
    try {
      rt->attach_device(memory, std::move(device));
    } catch (const std::exception& e) {
      // Capacity was pre-checked above; what remains is the device model
      // itself refusing (mailbox/LSA rejection).
      return Error{Errc::DeviceFailure, e.what()};
    }
  }

  std::map<std::string, MemorySpace, std::less<>> spaces;
  for (const core::Exposure& e : exposures_) {
    if (e.dax_name.empty()) continue;
    MemorySpace s;
    s.name = e.dax_name;
    s.kind = e.emulated_pmem ? ExposureKind::EmulatedPmem
                             : ExposureKind::DeviceDax;
    s.memory = e.memory;
    s.profile = simkit::profile_of(rt->machine(), e.memory);
    s.domain = rt->domain_of(e.memory);
    s.numa_node = e.memory_mode ? rt->node_of_memory(e.memory) : -1;
    s.mount = rt->dax(e.dax_name).path();
    spaces.emplace(s.name, std::move(s));
  }
  return Runtime(std::move(rt), std::move(spaces));
}

RuntimeBuilder RuntimeBuilder::setup_one() {
  auto ids = simkit::profiles::make_setup_one();
  RuntimeBuilder b;
  b.machine(std::move(ids.machine));
  b.select_memory(ids.ddr5_socket0).as_emulated_pmem("pmem0");
  b.select_memory(ids.ddr5_socket1).as_emulated_pmem("pmem1");
  b.select_memory(ids.cxl)
      .as_dax("pmem2")
      .as_memory_mode()
      .attach_device(cxlsim::make_fpga_prototype());
  return b;
}

RuntimeBuilder RuntimeBuilder::setup_two() {
  auto ids = simkit::profiles::make_setup_two();
  RuntimeBuilder b;
  b.machine(std::move(ids.machine));
  b.select_memory(ids.ddr4_socket0).as_emulated_pmem("pmem0");
  b.select_memory(ids.ddr4_socket1).as_emulated_pmem("pmem1");
  return b;
}

}  // namespace cxlpmem::api
