// api/cxlpmem.hpp — the public facade of the CXL-as-PMem runtime.
//
// One include gives an application the whole programming model the paper
// argues for (Fridman et al., SC'23): describe a machine with
// RuntimeBuilder, get namespaces ("pmem0", "pmem1", "pmem2"), and open
// PMDK-style pools *by namespace name* — so moving a workload from emulated
// DRAM-PMem to a CXL expander (or any future backend) is a one-argument
// change.  On top of pools sits the typed object model (ptr<T> / p<T> /
// make<T>, api/ptr.hpp) and the service surface for every scenario the
// repo models: checkpoint/restart (Runtime::checkpoint_store), pool
// migration between tiers (Runtime::migrate_pool), and hybrid data
// placement (Runtime::tiers / place).  Entry points return Result<T>
// instead of throwing; the unified Errc taxonomy spans pool, allocator,
// transaction, device and configuration failures.
//
//   #include "api/cxlpmem.hpp"
//   using namespace cxlpmem;
//
//   auto rt = api::RuntimeBuilder::setup_one().base_dir(dir).build();
//   if (!rt) { /* rt.error().to_string() */ }
//   auto pool = rt->open_or_create_pool("pmem2", "kv");
//   auto st = pool->run_tx([&] { /* transactional mutation */ });
//
// Layering: api -> core (runtime/namespaces/checkpoints) -> pmemkit
// (pools/transactions) + cxlsim (device model) + numakit + simkit
// (machine model).  Exceptions survive only below the facade line, where
// the crash simulator needs them (pmemkit::CrashInjected unwinds through
// everything by design).
#pragma once

#include "api/checkpoint_store.hpp" // IWYU pragma: export
#include "api/memory_space.hpp"     // IWYU pragma: export
#include "api/pool.hpp"             // IWYU pragma: export
#include "api/ptr.hpp"              // IWYU pragma: export
#include "api/result.hpp"           // IWYU pragma: export
#include "api/runtime.hpp"          // IWYU pragma: export
#include "api/runtime_builder.hpp"  // IWYU pragma: export
