// api/pool.hpp — Pool: a pmemkit ObjectPool bound to the MemorySpace it was
// opened through.
//
// The same Pool surface runs unmodified whether the bytes live on emulated
// DRAM-PMem, the CXL expander, or a DCPMM model — the binding is the only
// difference, and it is inspectable (space()).  Pool adds Result-based
// wrappers for the common entry points; the full low-level ObjectPool API
// (direct(), persist(), typed iteration, ...) stays reachable via pmem() /
// operator-> because inside a transaction pmemkit keeps its exception
// discipline (the crash simulator depends on it).
#pragma once

#include <memory>
#include <string>
#include <utility>

#include "api/memory_space.hpp"
#include "api/result.hpp"
#include "api/translate.hpp"
#include "pmemkit/pool.hpp"

namespace cxlpmem::api {

class Pool {
 public:
  Pool(MemorySpace space, std::unique_ptr<pmemkit::ObjectPool> impl)
      : space_(std::move(space)), impl_(std::move(impl)) {}

  Pool(Pool&&) = default;
  Pool& operator=(Pool&&) = default;

  // --- binding ---------------------------------------------------------------
  [[nodiscard]] const MemorySpace& space() const noexcept { return space_; }
  [[nodiscard]] bool durable() const noexcept { return space_.durable(); }

  // --- low-level access ------------------------------------------------------
  [[nodiscard]] pmemkit::ObjectPool& pmem() noexcept { return *impl_; }
  [[nodiscard]] const pmemkit::ObjectPool& pmem() const noexcept {
    return *impl_;
  }
  pmemkit::ObjectPool* operator->() noexcept { return impl_.get(); }
  const pmemkit::ObjectPool* operator->() const noexcept {
    return impl_.get();
  }

  [[nodiscard]] bool recovered() const noexcept { return impl_->recovered(); }
  [[nodiscard]] std::string layout() const { return impl_->layout(); }

  /// Occupancy plus contention counters (lane waits, allocator run-lock
  /// skips/waits) — the signal a multi-threaded producer watches to decide
  /// whether the pool, not the workload, is the bottleneck.
  [[nodiscard]] pmemkit::PoolStats stats() const { return impl_->stats(); }

  // --- Result-based conveniences --------------------------------------------
  /// Root object of type T (allocated zeroed on first use), as a direct
  /// pointer.  Errors (allocation failure, size mismatch) come back as
  /// Result; inside the call pmemkit may still throw internally.
  template <typename T>
  [[nodiscard]] Result<T*> root() {
    return wrap([&] { return impl_->direct(impl_->root<T>()); });
  }

  /// Runs `fn` inside a transaction, folding transaction failures into the
  /// Result channel.  A simulated power cut (pmemkit::CrashInjected) is not
  /// an error — it unwinds straight through to the crash harness.
  template <typename F>
  [[nodiscard]] Result<void> run_tx(F&& fn) {
    return wrap([&] { impl_->run_tx(std::forward<F>(fn)); });
  }

 private:
  MemorySpace space_;
  std::unique_ptr<pmemkit::ObjectPool> impl_;
};

}  // namespace cxlpmem::api
