// api/pool.hpp — Pool: a pmemkit ObjectPool bound to the MemorySpace it was
// opened through, carrying the typed persistent programming model.
//
// The same Pool surface runs unmodified whether the bytes live on emulated
// DRAM-PMem, the CXL expander, or a DCPMM model — the binding is the only
// difference, and it is inspectable (space()).  Typed entry points (root<T>,
// make<T>, destroy, for_each<T>) work in ptr<T>/p<T> terms so applications
// never touch raw ObjIds or direct() casts; the full low-level ObjectPool
// API stays reachable via pmem() / operator-> as the documented escape
// hatch, because inside a transaction pmemkit keeps its exception
// discipline (the crash simulator depends on it).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <type_traits>
#include <utility>

#include "api/memory_space.hpp"
#include "api/ptr.hpp"
#include "api/result.hpp"
#include "api/translate.hpp"
#include "pmemkit/evolve.hpp"
#include "pmemkit/pool.hpp"

namespace cxlpmem::api {

class Pool {
 public:
  Pool(MemorySpace space, std::unique_ptr<pmemkit::ObjectPool> impl)
      : space_(std::move(space)), impl_(std::move(impl)) {}

  Pool(Pool&&) = default;
  Pool& operator=(Pool&&) = default;

  // --- binding ---------------------------------------------------------------
  [[nodiscard]] const MemorySpace& space() const noexcept { return space_; }
  [[nodiscard]] bool durable() const noexcept { return space_.durable(); }

  // --- low-level access (the documented escape hatch) -------------------------
  [[nodiscard]] pmemkit::ObjectPool& pmem() noexcept { return *impl_; }
  [[nodiscard]] const pmemkit::ObjectPool& pmem() const noexcept {
    return *impl_;
  }
  pmemkit::ObjectPool* operator->() noexcept { return impl_.get(); }
  const pmemkit::ObjectPool* operator->() const noexcept {
    return impl_.get();
  }

  [[nodiscard]] bool recovered() const noexcept { return impl_->recovered(); }
  [[nodiscard]] std::string layout() const { return impl_->layout(); }

  /// Occupancy plus contention counters (lane waits, allocator run-lock
  /// skips/waits) — the signal a multi-threaded producer watches to decide
  /// whether the pool, not the workload, is the bottleneck — and, since
  /// the evolution work, fragmentation (heap.live_bytes / reserved_bytes /
  /// fragmentation), layout_version and the resize count.
  [[nodiscard]] pmemkit::PoolStats stats() const { return impl_->stats(); }

  // --- online evolution ------------------------------------------------------
  /// Grows or shrinks the pool in place (pmemkit::ObjectPool::resize
  /// semantics: grow is usable immediately; shrink refuses with
  /// Errc::BadArgument while live objects occupy the doomed tail; the
  /// calling thread must hold no transaction or LaneSession on the pool).
  [[nodiscard]] Result<void> resize(std::uint64_t new_size) {
    return wrap([&] { impl_->resize(new_size); });
  }

  /// Defragments the heap by relocating the objects owned by `refs` (each
  /// element points at the owning reference slot, which is rewritten inside
  /// the same transaction that moves its object — pmemobj_defrag's
  /// contract; ptr<T> slots are exactly ObjIds, so &p.oid()-style slots
  /// from containers plug in directly).
  [[nodiscard]] Result<pmemkit::CompactReport> compact(
      std::span<pmemkit::ObjId* const> refs,
      pmemkit::CompactOptions options = {}) {
    return wrap(
        [&] { return pmemkit::compact_pool(*impl_, refs, options); });
  }

  // --- typed programming model ------------------------------------------------
  /// Typed root object, allocated zeroed (and typed as T) on first use.
  /// Reopening a pool whose root was created as a different type comes back
  /// as Errc::TypeMismatch.
  template <typename T>
  [[nodiscard]] Result<ptr<T>> root() {
    static_assert(std::is_standard_layout_v<T>,
                  "persistent root types must be standard-layout (member "
                  "offsets must be pinned across toolchains)");
    return wrap([&] {
      return ptr<T>(impl_->root_raw(sizeof(T), type_number<T>()));
    });
  }

  /// Transactionally allocates and constructs a T (make_persistent
  /// equivalent).  Must be called inside run_tx — the allocation is freed
  /// automatically if the transaction aborts; outside a transaction it
  /// throws pmemkit::TxError(TxMisuse).  Throws rather than returning
  /// Result because inside a transaction the exception discipline is what
  /// aborts correctly (and simulated power cuts must unwind untouched).
  template <typename T, typename... Args>
  ptr<T> make(Args&&... args) {
    return make_sized<T>(sizeof(T), std::forward<Args>(args)...);
  }

  /// make<T> with an explicit usable size >= sizeof(T), for types that keep
  /// a variable payload inline after the struct (string entries, buffers).
  /// tx_alloc registers the whole usable range as fresh: writes into it
  /// (p<> fields, payload memcpy) are flushed by the transaction's commit
  /// and cost no undo-log entries — the AllocAction is the rollback.
  template <typename T, typename... Args>
  ptr<T> make_sized(std::uint64_t usable_bytes, Args&&... args) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "persistent objects are reclaimed by free, not by "
                  "destructor — T must be trivially destructible");
    if (usable_bytes < sizeof(T))
      throw pmemkit::AllocError(pmemkit::ErrKind::BadAlloc,
                                "make_sized: size below sizeof(T)");
    const pmemkit::ObjId oid =
        impl_->tx_alloc(usable_bytes, type_number<T>(), /*zero=*/true);
    new (impl_->direct(oid)) T(std::forward<Args>(args)...);
    return ptr<T>(oid);
  }

  /// Transactionally destroys a typed object (the free is deferred to
  /// commit; the object stays readable inside the transaction and survives
  /// an abort).  Must be called inside run_tx.
  template <typename T>
  void destroy(ptr<T> object) {
    if (object.is_null()) return;
    (void)impl_->direct_checked(object.oid(), type_number<T>());
    impl_->tx_free(object.oid());
  }

  /// Visits every live object of type T (typed POBJ_FIRST/NEXT iteration),
  /// calling fn(ptr<T>).
  template <typename T, typename F>
  void for_each(F&& fn) {
    for (pmemkit::ObjId o = impl_->first(type_number<T>()); !o.is_null();
         o = impl_->next(o, type_number<T>()))
      fn(ptr<T>(o));
  }

  /// Live objects of type T.
  template <typename T>
  [[nodiscard]] std::uint64_t count() {
    std::uint64_t n = 0;
    for_each<T>([&](ptr<T>) { ++n; });
    return n;
  }

  /// Runs `fn` inside a transaction, folding transaction failures into the
  /// Result channel.  A simulated power cut (pmemkit::CrashInjected) is not
  /// an error — it unwinds straight through to the crash harness.
  template <typename F>
  [[nodiscard]] Result<void> run_tx(F&& fn) {
    return wrap([&] { impl_->run_tx(std::forward<F>(fn)); });
  }

 private:
  MemorySpace space_;
  std::unique_ptr<pmemkit::ObjectPool> impl_;
};

}  // namespace cxlpmem::api
