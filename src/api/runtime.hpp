// api/runtime.hpp — the facade Runtime: namespace-addressed pools over a
// modelled machine.
//
// Built by RuntimeBuilder (api/runtime_builder.hpp), never constructed
// directly.  Every pool operation is addressed by *namespace name* — the
// paper's migration story ("Optane -> CXL is a namespace choice") is
// literally one argument here:
//
//   auto pool = rt.create_pool("pmem2", "kv");      // CXL-backed
//   auto pool = rt.create_pool("pmem0", "kv");      // emulated DRAM-PMem
//
// Entry points return Result<T>; the underlying core::Runtime remains
// reachable (core()) for components that still speak the throwing API.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "api/checkpoint_store.hpp"
#include "api/memory_space.hpp"
#include "api/pool.hpp"
#include "api/result.hpp"
#include "core/migrate.hpp"
#include "core/runtime.hpp"
#include "core/tiering.hpp"

namespace cxlpmem::api {

// The facade vocabulary for the placement and migration services — aliases
// so applications say api::PlacementRequest and never spell a core:: name.
using Tier = cxlpmem::core::Tier;
using PlacementRequest = cxlpmem::core::PlacementRequest;
using PlacementDecision = cxlpmem::core::PlacementDecision;
using PlacementPlan = cxlpmem::core::PlacementPlan;
using MigrationReport = cxlpmem::core::MigrationReport;
using PersistenceDomain = cxlpmem::core::PersistenceDomain;

/// Options for create_pool / open_pool.  Defaults make the quickstart a
/// one-liner; everything is overridable.
struct PoolSpec {
  /// Pool file inside the namespace.  Empty -> "<layout>.pool".
  std::string file;
  /// Pool size on create.  0 -> ObjectPool::min_pool_size().
  std::uint64_t size = 0;
  /// Permit pools on a *plain volatile* namespace.  Emulated-PMem
  /// namespaces never need this: exposing DRAM as pmem0/pmem1 was already
  /// the operator's opt-in, exactly like the paper's emulated mounts.
  bool allow_volatile = false;
  /// Maintain the crash-consistency shadow image (slower; for tests).
  bool track_shadow = false;
  /// Open-time layout upgrade: a version-1 pool image (or one carrying an
  /// interrupted migration marker) is migrated in place to the current
  /// layout before the open completes.  Without it such images come back
  /// as Errc::VersionMismatch / Errc::PoolCorrupt.
  bool migrate = false;
  /// Attach PmemSan, the runtime persistency sanitizer: flush/fence
  /// discipline violations surface through the configured ViolationSink
  /// (throwing by default, so they come back as
  /// Errc::PersistencyViolation).  CXLPMEM_PMEMCHECK=1 enables it
  /// process-wide without touching specs.
  bool pmemcheck = false;
};

/// Options for checkpoint_store: the pool spec plus the incremental
/// engine's knobs.  `chunk_size` is the dirty-tracking granularity (rounded
/// to 4 KiB, pinned into the pool at creation); `threads` sizes the save
/// worker pool (0 = NUMA-aware default, 1 = saves stay on the caller).
struct CheckpointSpec {
  PoolSpec pool;
  std::uint64_t chunk_size = cxlpmem::core::kDefaultCheckpointChunk;
  int threads = 0;
};

class Runtime {
 public:
  Runtime(Runtime&&) = default;
  Runtime& operator=(Runtime&&) = default;

  // --- machine & namespaces --------------------------------------------------
  [[nodiscard]] const simkit::Machine& machine() const noexcept {
    return rt_->machine();
  }
  /// NUMA view of the machine (numactl -H equivalent).
  [[nodiscard]] const numakit::NumaTopology& topology() const noexcept {
    return rt_->topology();
  }
  /// Namespace names, ascending ("pmem0", "pmem1", "pmem2").
  [[nodiscard]] std::vector<std::string> namespaces() const;
  /// The MemorySpace handle behind a namespace name.
  [[nodiscard]] Result<MemorySpace> space(std::string_view name) const;
  /// NUMA node a namespace's device is onlined as (Memory Mode), or -1.
  [[nodiscard]] int node_of(std::string_view name) const;
  /// The namespace backed by a machine memory device — the bridge from a
  /// PlacementDecision::memory back into pool/checkpoint addressing.
  [[nodiscard]] Result<std::string> namespace_for(
      simkit::MemoryId memory) const;

  // --- pools -----------------------------------------------------------------
  [[nodiscard]] Result<Pool> create_pool(std::string_view ns,
                                         std::string_view layout,
                                         PoolSpec spec = PoolSpec());
  [[nodiscard]] Result<Pool> open_pool(std::string_view ns,
                                       std::string_view layout,
                                       PoolSpec spec = PoolSpec());
  /// pmemobj_create-or-open: open when the file exists, else create.
  [[nodiscard]] Result<Pool> open_or_create_pool(std::string_view ns,
                                                 std::string_view layout,
                                                 PoolSpec spec = PoolSpec());
  [[nodiscard]] Result<bool> pool_exists(std::string_view ns,
                                         std::string_view file) const;
  [[nodiscard]] Result<void> remove_pool(std::string_view ns,
                                         std::string_view file);
  /// Capacity-checked live resize: routes through the pool's namespace so a
  /// grow that would exceed the namespace's remaining bytes comes back as
  /// Errc::CapacityExceeded *before* anything durable happens, and the
  /// namespace's used-byte accounting tracks the actual size delta.
  /// Pool::resize() stays available for callers that only hold the pool —
  /// it talks straight to the file and skips this accounting.
  [[nodiscard]] Result<void> resize_pool(Pool& pool, std::uint64_t new_size);

  // --- checkpoint/restart ----------------------------------------------------
  /// Double-buffered crash-atomic checkpoint store on namespace `ns`, sized
  /// for payloads up to `max_payload_bytes`.  This overload keeps saves on
  /// the calling thread (threads = 1) — the conservative legacy behaviour.
  [[nodiscard]] Result<CheckpointStore> checkpoint_store(
      std::string_view ns, const std::string& file,
      std::uint64_t max_payload_bytes, PoolSpec spec = PoolSpec());

  /// checkpoint_store with the incremental-engine knobs.  `threads == 0`
  /// picks a NUMA-aware default: up to four workers labelled with the cores
  /// of the namespace's NUMA node (or the nearest node with CPUs for a
  /// CPU-less CXL node) — multi-threaded streams are what saturate CXL
  /// bandwidth, and crossing sockets to reach the device wastes them.
  [[nodiscard]] Result<CheckpointStore> checkpoint_store(
      std::string_view ns, const std::string& file,
      std::uint64_t max_payload_bytes, const CheckpointSpec& spec);

  // --- migration -------------------------------------------------------------
  /// Migrates pool `file` (layout `layout`) from namespace `src_ns` to
  /// `dst_ns` — the paper's Optane→CXL scenario (ref [22]) as one call.
  /// The source is left intact; the report says what changed about
  /// durability (a volatile destination is legal but flagged).
  [[nodiscard]] Result<MigrationReport> migrate_pool(std::string_view src_ns,
                                                     std::string_view dst_ns,
                                                     const std::string& file,
                                                     std::string_view layout);

  // --- data placement (hybrid tiering, paper §6) -----------------------------
  /// Every memory device as a placement tier, probed from
  /// `viewpoint_socket` with the machine's bandwidth model.
  [[nodiscard]] std::vector<Tier> tiers(
      simkit::SocketId viewpoint_socket = 0) const;
  /// Places requests (hotness-descending) across the tiers, honouring
  /// capacity and durability constraints.
  [[nodiscard]] Result<PlacementPlan> place(
      std::vector<PlacementRequest> requests,
      simkit::SocketId viewpoint_socket = 0) const;

  // --- escape hatch ----------------------------------------------------------
  /// The underlying throwing runtime (device mailboxes, migration, tiering).
  [[nodiscard]] cxlpmem::core::Runtime& core() noexcept { return *rt_; }
  [[nodiscard]] const cxlpmem::core::Runtime& core() const noexcept {
    return *rt_;
  }

 private:
  friend class RuntimeBuilder;
  Runtime(std::unique_ptr<cxlpmem::core::Runtime> rt,
          std::map<std::string, MemorySpace, std::less<>> spaces)
      : rt_(std::move(rt)), spaces_(std::move(spaces)) {}

  [[nodiscard]] const MemorySpace* find_space(std::string_view name) const;
  [[nodiscard]] static std::string default_file(std::string_view layout);

  std::unique_ptr<cxlpmem::core::Runtime> rt_;
  std::map<std::string, MemorySpace, std::less<>> spaces_;
};

}  // namespace cxlpmem::api
