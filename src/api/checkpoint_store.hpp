// api/checkpoint_store.hpp — the facade's checkpoint/restart service.
//
// The paper's §1.2 headline use-case (periodic solver/diagnostic state that
// survives node failure) as a Result-based handle: double-buffered
// crash-atomic saves, allocation-free restarts via load_into(), and the
// same namespace-addressing as pools — obtained from
// Runtime::checkpoint_store(ns, file, max_bytes), so pointing a restart
// loop at emulated PMem instead of the CXL expander is one argument.
//
// Wraps core::CheckpointStore; the underlying store (and through it the
// pmemkit pool) stays reachable via core() for crash-harness code.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "api/result.hpp"
#include "api/translate.hpp"
#include "core/checkpoint.hpp"

namespace cxlpmem::api {

// Facade vocabulary for the incremental engine — applications never spell
// a core:: name.
using SaveMode = cxlpmem::core::SaveMode;
using SaveStats = cxlpmem::core::SaveStats;
using CheckpointOptions = cxlpmem::core::CheckpointOptions;

class CheckpointStore {
 public:
  explicit CheckpointStore(
      std::unique_ptr<cxlpmem::core::CheckpointStore> impl)
      : impl_(std::move(impl)) {}

  CheckpointStore(CheckpointStore&&) = default;
  CheckpointStore& operator=(CheckpointStore&&) = default;

  /// Atomically replaces the checkpoint: a crash at any instant leaves
  /// either the previous epoch or this one, never a torn mix.  Payloads
  /// above max_payload_bytes() come back as Errc::CapacityExceeded.
  /// Incremental by default — only chunks whose fingerprint changed since
  /// this slot was last sealed are rewritten; pass SaveMode::Full to force
  /// a complete rewrite.  Returns what the save moved.
  [[nodiscard]] Result<SaveStats> save(
      std::span<const std::byte> payload,
      SaveMode mode = SaveMode::Incremental) {
    return wrap([&] { return impl_->save(payload, mode); });
  }

  /// save() with SaveMode::Full spelled as a verb — the baseline path for
  /// benches and paranoid callers.
  [[nodiscard]] Result<SaveStats> save_full(
      std::span<const std::byte> payload) {
    return save(payload, SaveMode::Full);
  }

  /// The latest payload as a fresh buffer (empty when nothing was saved).
  [[nodiscard]] Result<std::vector<std::byte>> load() const {
    return wrap([&] { return impl_->load(); });
  }

  /// Copies the latest payload into `dst` without allocating; returns the
  /// bytes written (0 when nothing was ever saved).  A too-small buffer is
  /// Errc::CapacityExceeded — size it with payload_bytes() or
  /// max_payload_bytes().
  [[nodiscard]] Result<std::uint64_t> load_into(
      std::span<std::byte> dst) const {
    return wrap([&] { return impl_->load_into(dst); });
  }

  /// Monotonic save counter (0 = nothing saved yet).
  [[nodiscard]] std::uint64_t epoch() const { return impl_->epoch(); }
  [[nodiscard]] bool has_checkpoint() const { return impl_->has_checkpoint(); }
  [[nodiscard]] std::uint64_t payload_bytes() const {
    return impl_->payload_bytes();
  }
  [[nodiscard]] std::uint64_t max_payload_bytes() const noexcept {
    return impl_->max_payload_bytes();
  }

  /// Effective incremental-engine chunk size (pinned into the pool at
  /// creation; reopens report the on-media value).
  [[nodiscard]] std::uint64_t chunk_size() const noexcept {
    return impl_->chunk_size();
  }

  /// Stats of the most recent save() on this handle (zeroes before one).
  [[nodiscard]] const SaveStats& last_save() const noexcept {
    return impl_->last_save();
  }

  /// True when the backing pool needed recovery at open (writer crashed).
  [[nodiscard]] bool recovered() const { return impl_->recovered(); }

  /// Escape hatch: the throwing core store (and its pmemkit pool).
  [[nodiscard]] cxlpmem::core::CheckpointStore& core() noexcept {
    return *impl_;
  }

 private:
  std::unique_ptr<cxlpmem::core::CheckpointStore> impl_;
};

}  // namespace cxlpmem::api
