#include "api/runtime.hpp"

#include <algorithm>
#include <utility>

#include "api/translate.hpp"
#include "numakit/affinity.hpp"

namespace cxlpmem::api {

namespace {

Error unknown_namespace(std::string_view name) {
  return Error{Errc::UnknownNamespace,
               "no namespace named '" + std::string(name) + "'"};
}

/// Exposing DRAM as an emulated-PMem namespace was the operator's explicit
/// opt-in (the paper's pmem0/pmem1 mounts); only *plain volatile* spaces
/// still require allow_volatile.
bool volatile_allowed(const PoolSpec& spec, const MemorySpace& s) {
  return spec.allow_volatile || s.kind == ExposureKind::EmulatedPmem;
}

pmemkit::PoolOptions options_of(const PoolSpec& spec) {
  pmemkit::PoolOptions options;
  options.track_shadow = spec.track_shadow;
  options.migrate = spec.migrate;
  options.pmemcheck = spec.pmemcheck;
  return options;
}

}  // namespace

std::vector<std::string> Runtime::namespaces() const {
  std::vector<std::string> names;
  names.reserve(spaces_.size());
  for (const auto& [name, space] : spaces_) names.push_back(name);
  return names;
}

const MemorySpace* Runtime::find_space(std::string_view name) const {
  const auto it = spaces_.find(name);
  return it == spaces_.end() ? nullptr : &it->second;
}

std::string Runtime::default_file(std::string_view layout) {
  return std::string(layout) + ".pool";
}

Result<MemorySpace> Runtime::space(std::string_view name) const {
  const MemorySpace* s = find_space(name);
  if (s == nullptr) return unknown_namespace(name);
  return *s;
}

int Runtime::node_of(std::string_view name) const {
  const MemorySpace* s = find_space(name);
  return s == nullptr ? -1 : s->numa_node;
}

Result<Pool> Runtime::create_pool(std::string_view ns, std::string_view layout,
                                  PoolSpec spec) {
  const MemorySpace* s = find_space(ns);
  if (s == nullptr) return unknown_namespace(ns);

  const std::string file =
      spec.file.empty() ? default_file(layout) : spec.file;
  const std::uint64_t size =
      spec.size != 0 ? spec.size : pmemkit::ObjectPool::min_pool_size();

  // Everything below may throw (bad file name, capacity, EEXIST -> the
  // PoolExists kind from MappedFile) — keep it all inside wrap().
  return wrap([&] {
    return Pool(*s, rt_->dax(s->name).create_pool(
                        file, layout, size, volatile_allowed(spec, *s),
                        options_of(spec)));
  });
}

Result<Pool> Runtime::open_pool(std::string_view ns, std::string_view layout,
                                PoolSpec spec) {
  const MemorySpace* s = find_space(ns);
  if (s == nullptr) return unknown_namespace(ns);

  const std::string file =
      spec.file.empty() ? default_file(layout) : spec.file;
  // ENOENT surfaces as the PoolNotFound kind from MappedFile::open.
  return wrap([&] {
    return Pool(*s,
                rt_->dax(s->name).open_pool(file, layout, options_of(spec)));
  });
}

Result<Pool> Runtime::open_or_create_pool(std::string_view ns,
                                          std::string_view layout,
                                          PoolSpec spec) {
  // Try-open-with-fallback rather than exists()-then-act: two callers
  // racing on a fresh pool must both end up with a handle, not one of them
  // with a spurious PoolExists.
  Result<Pool> opened = open_pool(ns, layout, spec);
  if (opened.ok() || opened.error().code != Errc::PoolNotFound)
    return opened;
  Result<Pool> created = create_pool(ns, layout, spec);
  if (created.ok() || created.error().code != Errc::PoolExists)
    return created;
  return open_pool(ns, layout, std::move(spec));  // lost the create race
}

Result<bool> Runtime::pool_exists(std::string_view ns,
                                  std::string_view file) const {
  const MemorySpace* s = find_space(ns);
  if (s == nullptr) return unknown_namespace(ns);
  return wrap(
      [&] { return rt_->dax(s->name).pool_exists(std::string(file)); });
}

Result<void> Runtime::remove_pool(std::string_view ns,
                                  std::string_view file) {
  const MemorySpace* s = find_space(ns);
  if (s == nullptr) return unknown_namespace(ns);
  return wrap([&] { rt_->dax(s->name).remove_pool(std::string(file)); });
}

Result<void> Runtime::resize_pool(Pool& pool, std::uint64_t new_size) {
  const MemorySpace* s = find_space(pool.space().name);
  if (s == nullptr) return unknown_namespace(pool.space().name);
  return wrap([&] { rt_->dax(s->name).resize_pool(pool.pmem(), new_size); });
}

Result<std::string> Runtime::namespace_for(simkit::MemoryId memory) const {
  for (const auto& [name, space] : spaces_)
    if (space.memory == memory) return name;
  return Error{Errc::UnknownNamespace,
               "no namespace exposes memory device " +
                   std::to_string(memory)};
}

Result<CheckpointStore> Runtime::checkpoint_store(
    std::string_view ns, const std::string& file,
    std::uint64_t max_payload_bytes, PoolSpec spec) {
  CheckpointSpec cp;
  cp.pool = std::move(spec);
  cp.threads = 1;  // legacy overload: saves stay on the calling thread
  return checkpoint_store(ns, file, max_payload_bytes, cp);
}

Result<CheckpointStore> Runtime::checkpoint_store(
    std::string_view ns, const std::string& file,
    std::uint64_t max_payload_bytes, const CheckpointSpec& spec) {
  const MemorySpace* s = find_space(ns);
  if (s == nullptr) return unknown_namespace(ns);
  cxlpmem::core::CheckpointOptions options;
  options.chunk_size = spec.chunk_size;
  options.affinity = numakit::nearest_cpus(
      rt_->topology(), rt_->topology().node_of_memory(s->memory));
  options.threads =
      spec.threads != 0
          ? spec.threads
          : std::min<int>(4, static_cast<int>(options.affinity.size()));
  return wrap([&] {
    return CheckpointStore(std::make_unique<cxlpmem::core::CheckpointStore>(
        rt_->dax(s->name), file, max_payload_bytes,
        volatile_allowed(spec.pool, *s), options_of(spec.pool),
        std::move(options)));
  });
}

Result<MigrationReport> Runtime::migrate_pool(std::string_view src_ns,
                                              std::string_view dst_ns,
                                              const std::string& file,
                                              std::string_view layout) {
  const MemorySpace* src = find_space(src_ns);
  if (src == nullptr) return unknown_namespace(src_ns);
  const MemorySpace* dst = find_space(dst_ns);
  if (dst == nullptr) return unknown_namespace(dst_ns);
  return wrap([&] {
    return cxlpmem::core::migrate_pool(rt_->dax(src->name),
                                       rt_->dax(dst->name), file, layout);
  });
}

std::vector<Tier> Runtime::tiers(simkit::SocketId viewpoint_socket) const {
  return cxlpmem::core::TierAdvisor(rt_->machine(), viewpoint_socket).tiers();
}

Result<PlacementPlan> Runtime::place(std::vector<PlacementRequest> requests,
                                     simkit::SocketId viewpoint_socket) const {
  return wrap([&] {
    return cxlpmem::core::TierAdvisor(rt_->machine(), viewpoint_socket)
        .plan(std::move(requests));
  });
}

}  // namespace cxlpmem::api
