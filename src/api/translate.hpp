// api/translate.hpp — exception-to-Result translation at the facade
// boundary.
//
// Everything below the facade (pmemkit, core, simkit) reports failure by
// throwing; the facade reports by Result.  wrap() runs a callable and folds
// the throw taxonomy into api::Error.  pmemkit::CrashInjected is NOT a
// std::exception and therefore passes through wrap() untouched — simulated
// power cuts must reach the crash harness with no handling in between.
#pragma once

#include <filesystem>
#include <stdexcept>
#include <type_traits>

#include "api/result.hpp"
#include "pmemkit/errors.hpp"

namespace cxlpmem::api {

/// pmemkit's precise kinds fold onto the facade's actionable codes.
[[nodiscard]] inline Errc errc_of(pmemkit::ErrKind k) noexcept {
  using K = pmemkit::ErrKind;
  switch (k) {
    case K::NotAPool:
    case K::VersionMismatch:
    case K::ChecksumMismatch:
    case K::SizeMismatch:
    case K::CorruptImage:
    case K::MigrationPending:
      return Errc::PoolCorrupt;
    case K::ShrinkBlocked:
      return Errc::BadArgument;
    case K::LayoutMismatch:
    case K::LayoutTooLong:
      return Errc::LayoutMismatch;
    case K::TypeMismatch:
      return Errc::TypeMismatch;
    case K::PoolTooSmall:
    case K::BadName:
    case K::BadOid:
    case K::BadAlloc:
    case K::InvalidFree:
      return Errc::BadArgument;
    case K::PoolExists:
      return Errc::PoolExists;
    case K::PoolNotFound:
      return Errc::PoolNotFound;
    case K::NotDurable:
      return Errc::NotPersistent;
    case K::CapacityExceeded:
      return Errc::CapacityExceeded;
    case K::OutOfSpace:
      return Errc::OutOfSpace;
    case K::LogOverflow:
    case K::TxMisuse:
      return Errc::TxFailure;
    case K::PersistencyViolation:
      return Errc::PersistencyViolation;
    case K::Io:
      return Errc::IoFailure;
    case K::Unspecified:
      return Errc::Internal;
  }
  return Errc::Internal;
}

[[nodiscard]] inline Error translate(const pmemkit::Error& e) {
  return Error{errc_of(e.kind()), e.what()};
}

/// Runs `fn`, translating thrown failures into an error Result.
/// CrashInjected (not a std::exception) propagates untouched.
template <typename F>
[[nodiscard]] auto wrap(F&& fn) -> Result<std::invoke_result_t<F>> {
  using R = std::invoke_result_t<F>;
  try {
    if constexpr (std::is_void_v<R>) {
      fn();
      return Result<void>();
    } else {
      return Result<R>(fn());
    }
  } catch (const pmemkit::Error& e) {
    return translate(e);
  } catch (const std::invalid_argument& e) {
    return Error{Errc::InvalidConfig, e.what()};
  } catch (const std::filesystem::filesystem_error& e) {
    return Error{Errc::IoFailure, e.what()};
  } catch (const std::exception& e) {
    return Error{Errc::Internal, e.what()};
  }
}

}  // namespace cxlpmem::api
