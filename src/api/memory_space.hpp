// api/memory_space.hpp — MemorySpace: the handle a pool is bound to.
//
// The paper's punchline is that Optane -> CXL migration is *just a
// namespace choice*.  A MemorySpace is that choice, reified: it names the
// namespace, says what kind of exposure backs it, carries the backing
// device's simkit::MemoryProfile (so the application can ask "what am I
// actually running on?"), and states the PersistenceDomain — the one fact
// that decides whether a committed transaction survives power loss.
#pragma once

#include <filesystem>
#include <string>

#include "core/persist_domain.hpp"
#include "simkit/topology.hpp"

namespace cxlpmem::api {

/// How the namespace reaches its bytes.
enum class ExposureKind {
  EmulatedPmem,  ///< socket DRAM posing as PMem (the paper's pmem0/pmem1)
  DeviceDax,     ///< App-Direct namespace on a real device (pmem2, DCPMM)
};

[[nodiscard]] inline const char* to_string(ExposureKind k) noexcept {
  switch (k) {
    case ExposureKind::EmulatedPmem: return "emulated-pmem";
    case ExposureKind::DeviceDax: return "device-dax";
  }
  return "?";
}

struct MemorySpace {
  std::string name;  ///< namespace name ("pmem2")
  ExposureKind kind = ExposureKind::DeviceDax;
  simkit::MemoryId memory = simkit::kInvalidId;  ///< backing machine memory
  simkit::MemoryProfile profile;                 ///< backing device profile
  cxlpmem::core::PersistenceDomain domain =
      cxlpmem::core::PersistenceDomain::Volatile;
  /// NUMA node this device is *also* onlined as (Memory Mode), or -1.
  int numa_node = -1;
  std::filesystem::path mount;  ///< namespace directory (base/mnt/<name>)

  /// True when committed data survives power loss on this space.
  [[nodiscard]] bool durable() const noexcept {
    return cxlpmem::core::durable(domain);
  }
};

}  // namespace cxlpmem::api
