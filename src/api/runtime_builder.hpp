// api/runtime_builder.hpp — RuntimeBuilder: fluent, validated construction
// of the facade Runtime.
//
// Replaces raw Exposure-vector construction.  Two entry styles:
//
//   // 1. Describe a machine from scratch:
//   auto rt = RuntimeBuilder()
//                 .base_dir(dir)
//                 .socket_dram({.name = "ddr5-s0"})   // socket + its DIMM
//                 .as_emulated_pmem("pmem0")          // ...exposed as PMem
//                 .socket_dram({.name = "ddr5-s1"})
//                 .as_emulated_pmem("pmem1")
//                 .upi()
//                 .cxl_expander({.name = "cxl-fpga"})
//                 .as_dax("pmem2")
//                 .as_memory_mode()
//                 .attach_device(cxlsim::make_fpga_prototype())
//                 .build();                           // -> Result<Runtime>
//
//   // 2. Start from the paper's calibrated machines:
//   auto rt = RuntimeBuilder::setup_one().base_dir(dir).build();
//
// Exposure modifiers (as_emulated_pmem / as_dax / as_memory_mode /
// attach_device) apply to the most recently added memory — or to an
// explicitly chosen one via select_memory().  build() validates the whole
// description (duplicate namespace names, device/machine capacity mismatch,
// Memory Mode on non-link-attached memory, ...) and returns Result instead
// of throwing; the first recorded problem wins.
//
// Subsumes core::make_setup_one_runtime / make_setup_two_runtime: the
// presets produce the identical machines through this one validated path.
#pragma once

#include <cstdint>
#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "api/result.hpp"
#include "api/runtime.hpp"
#include "core/runtime.hpp"
#include "cxlsim/device.hpp"
#include "simkit/profiles.hpp"

namespace cxlpmem::api {

/// One socket plus the DRAM behind its IMC.  Defaults are the paper's
/// Setup #1 Sapphire-Rapids socket with one DDR5-4800 DIMM.
struct SocketDramSpec {
  std::string name = "socket";
  int cores = 10;
  double mlp_lines = simkit::profiles::kSprMlpLines;
  std::uint64_t l3_bytes = simkit::profiles::kSprL3Bytes;
  double base_freq_ghz = 2.0;
  simkit::MemoryKind dram_kind = simkit::MemoryKind::DramDdr5;
  double read_gbs = simkit::profiles::kDdr5ReadGbs;
  double write_gbs = simkit::profiles::kDdr5WriteGbs;
  double idle_latency_ns = simkit::profiles::kDdr5IdleLatencyNs;
  std::uint64_t capacity_bytes = 64ull << 30;
};

/// A socket-to-socket interconnect.  Defaults are SPR UPI.
struct UpiSpec {
  simkit::SocketId a = 0;
  simkit::SocketId b = 1;
  double gbs = simkit::profiles::kSprUpiGbs;
  double latency_ns = simkit::profiles::kSprUpiLatencyNs;
};

/// A link-attached CXL Type-3 expander: media + the link carrying CXL.mem.
/// Defaults are the paper's FPGA prototype behind PCIe Gen5 x16.
struct CxlExpanderSpec {
  std::string name = "cxl";
  simkit::SocketId attach_socket = 0;
  double media_read_gbs = simkit::profiles::kCxlFpgaReadGbs;
  double media_write_gbs = simkit::profiles::kCxlFpgaWriteGbs;
  double media_latency_ns = simkit::profiles::kCxlFpgaIdleLatencyNs;
  double combined_gbs = simkit::profiles::kCxlFpgaCombinedGbs;
  double link_gbs = simkit::profiles::kCxlLinkDirGbs;
  double link_latency_ns = simkit::profiles::kCxlLinkLatencyNs;
  std::uint64_t capacity_bytes = 16ull << 30;
  bool persistent = true;  ///< battery-backed persistence domain
};

class RuntimeBuilder {
 public:
  RuntimeBuilder() = default;

  /// The paper's Setup #1: 2x SPR + DDR5, battery-backed CXL FPGA as
  /// /mnt/pmem2 and NUMA node 2, FPGA device model attached.
  [[nodiscard]] static RuntimeBuilder setup_one();
  /// The paper's Setup #2: 2x Cascade Lake + DDR4, pmem0/pmem1 emulation,
  /// no CXL device.
  [[nodiscard]] static RuntimeBuilder setup_two();

  /// Directory hosting the namespace mounts (base_dir/mnt/<name>).
  RuntimeBuilder& base_dir(std::filesystem::path dir);

  /// Adopts a prebuilt machine (e.g. a simkit profile).  Memories gain
  /// exposures via select_memory() + modifiers.
  RuntimeBuilder& machine(simkit::Machine m);

  // --- fluent machine construction -------------------------------------------
  RuntimeBuilder& socket_dram(SocketDramSpec spec = SocketDramSpec());
  RuntimeBuilder& upi(UpiSpec spec = UpiSpec());
  RuntimeBuilder& cxl_expander(CxlExpanderSpec spec = CxlExpanderSpec());

  // --- exposure modifiers (apply to the selected memory) ---------------------
  /// Points subsequent modifiers at an existing memory id.
  RuntimeBuilder& select_memory(simkit::MemoryId m);
  /// DRAM-backed namespace posing as PMem (the paper's pmem0/pmem1).
  RuntimeBuilder& as_emulated_pmem(std::string dax_name);
  /// App-Direct DAX namespace on the selected device (the paper's pmem2).
  RuntimeBuilder& as_dax(std::string dax_name);
  /// Online the selected device as a CPU-less NUMA node (Memory Mode).
  RuntimeBuilder& as_memory_mode();
  /// Attaches a modelled Type-3 device to the selected memory; capacity is
  /// cross-checked at build() and the namespace label lands in the LSA.
  RuntimeBuilder& attach_device(std::shared_ptr<cxlsim::Type3Device> device);

  /// Validates the whole description and constructs the Runtime.
  [[nodiscard]] Result<Runtime> build();

 private:
  void fail(Errc code, std::string message);
  [[nodiscard]] cxlpmem::core::Exposure& exposure_for(simkit::MemoryId m);

  simkit::Machine machine_;
  std::filesystem::path base_dir_;
  std::vector<cxlpmem::core::Exposure> exposures_;
  std::vector<std::pair<simkit::MemoryId,
                        std::shared_ptr<cxlsim::Type3Device>>>
      devices_;
  simkit::MemoryId selected_ = simkit::kInvalidId;
  std::optional<Error> error_;
};

}  // namespace cxlpmem::api
