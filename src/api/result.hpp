// api/result.hpp — Result<T>: the facade's std::expected-style error
// channel.
//
// Facade entry points (RuntimeBuilder::build, Runtime::create_pool /
// open_pool, ...) report failure as a value instead of throwing: callers
// branch on ok() and read a unified Error { Errc, message } that spans the
// pmemkit exception taxonomy and core/simkit configuration failures.
// Exceptions remain *inside* transaction internals, where the crash
// simulator needs stack unwinding with no cleanup (see pmemkit::CrashInjected
// — it deliberately bypasses this layer).
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace cxlpmem::api {

/// Facade-level error codes.  Coarser than pmemkit::ErrKind on purpose: a
/// caller of the facade branches on *what to do next* (retry with a bigger
/// pool, pick another namespace, give up), not on which internal check
/// tripped.  The message preserves the precise cause.
enum class Errc {
  InvalidConfig,       ///< builder/machine wiring misuse
  DuplicateNamespace,  ///< two exposures claim the same dax name
  UnknownNamespace,    ///< no namespace with that name in this runtime
  CapacityMismatch,    ///< attached device disagrees with the machine model
  DeviceFailure,       ///< CXL device mailbox rejected an operation
  NotPersistent,       ///< pool on a volatile namespace without opt-in
  CapacityExceeded,    ///< namespace/device/store out of capacity
  PoolExists,          ///< create target already exists
  PoolNotFound,        ///< open target missing
  PoolCorrupt,         ///< bad magic/version/checksum/heap structures
  LayoutMismatch,      ///< layout name disagreement
  TypeMismatch,        ///< typed object access with the wrong type number
  BadArgument,         ///< malformed name/oid/size
  OutOfSpace,          ///< pool heap cannot satisfy the allocation
  TxFailure,           ///< transaction log overflow or misuse
  IoFailure,           ///< filesystem / socket / mmap level failure
  Protocol,            ///< malformed/oversized wire frame (service layer)
  PersistencyViolation,  ///< PmemSan rule fired (pmemcheck with throw sink)
  Timeout,             ///< deadline expired (connect/recv) — retryable
  Unavailable,         ///< shard quarantined, recovering — retryable
  Busy,                ///< shard queue full, load shed — retryable
  Internal,            ///< anything unclassified — must stay last
};

[[nodiscard]] inline const char* to_string(Errc c) noexcept {
  switch (c) {
    case Errc::InvalidConfig: return "invalid-config";
    case Errc::DuplicateNamespace: return "duplicate-namespace";
    case Errc::UnknownNamespace: return "unknown-namespace";
    case Errc::CapacityMismatch: return "capacity-mismatch";
    case Errc::DeviceFailure: return "device-failure";
    case Errc::NotPersistent: return "not-persistent";
    case Errc::CapacityExceeded: return "capacity-exceeded";
    case Errc::PoolExists: return "pool-exists";
    case Errc::PoolNotFound: return "pool-not-found";
    case Errc::PoolCorrupt: return "pool-corrupt";
    case Errc::LayoutMismatch: return "layout-mismatch";
    case Errc::TypeMismatch: return "type-mismatch";
    case Errc::BadArgument: return "bad-argument";
    case Errc::OutOfSpace: return "out-of-space";
    case Errc::TxFailure: return "tx-failure";
    case Errc::IoFailure: return "io-failure";
    case Errc::Protocol: return "protocol";
    case Errc::PersistencyViolation: return "persistency-violation";
    case Errc::Timeout: return "timeout";
    case Errc::Unavailable: return "unavailable";
    case Errc::Busy: return "busy";
    case Errc::Internal: return "internal";
  }
  return "?";
}

/// Inverse of to_string(Errc), for errors that crossed a wire as text (the
/// service layer prefixes its RESP error replies with the token so a remote
/// failure round-trips into the same taxonomy a local one uses).  Unknown
/// tokens come back as Errc::Internal.
[[nodiscard]] inline Errc errc_from_token(std::string_view token) noexcept {
  for (int c = 0; c <= static_cast<int>(Errc::Internal); ++c)
    if (token == to_string(static_cast<Errc>(c))) return static_cast<Errc>(c);
  return Errc::Internal;
}

struct Error {
  Errc code = Errc::Internal;
  std::string message;

  [[nodiscard]] std::string to_string() const {
    return std::string(api::to_string(code)) + ": " + message;
  }
};

/// Value-or-Error.  [[nodiscard]] so a failed create_pool cannot be silently
/// dropped.  value() on an error (and error() on a value) throws
/// std::logic_error — that is a caller bug, not a runtime condition.
template <typename T>
class [[nodiscard]] Result {
 public:
  using value_type = T;

  Result(T value) : v_(std::in_place_index<0>, std::move(value)) {}
  Result(Error error) : v_(std::in_place_index<1>, std::move(error)) {}

  [[nodiscard]] bool ok() const noexcept { return v_.index() == 0; }
  explicit operator bool() const noexcept { return ok(); }

  [[nodiscard]] T& value() & {
    require_ok();
    return std::get<0>(v_);
  }
  [[nodiscard]] const T& value() const& {
    require_ok();
    return std::get<0>(v_);
  }
  [[nodiscard]] T&& value() && {
    require_ok();
    return std::get<0>(std::move(v_));
  }

  [[nodiscard]] const Error& error() const {
    if (ok()) throw std::logic_error("Result::error() on a success value");
    return std::get<1>(v_);
  }

  [[nodiscard]] T& operator*() & { return value(); }
  [[nodiscard]] const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  template <typename U>
  [[nodiscard]] T value_or(U&& fallback) const& {
    return ok() ? std::get<0>(v_) : T(std::forward<U>(fallback));
  }

 private:
  void require_ok() const {
    if (!ok())
      throw std::logic_error("Result::value() on error — " +
                             std::get<1>(v_).to_string());
  }

  std::variant<T, Error> v_;
};

template <>
class [[nodiscard]] Result<void> {
 public:
  using value_type = void;

  Result() = default;
  Result(Error error) : error_(std::move(error)), ok_(false) {}

  [[nodiscard]] bool ok() const noexcept { return ok_; }
  explicit operator bool() const noexcept { return ok_; }

  /// Asserts success (throws std::logic_error on error), mirroring
  /// Result<T>::value() for callers that treat failure as a bug.
  void value() const {
    if (!ok_)
      throw std::logic_error("Result::value() on error — " +
                             error_.to_string());
  }

  [[nodiscard]] const Error& error() const {
    if (ok_) throw std::logic_error("Result::error() on a success value");
    return error_;
  }

 private:
  Error error_;
  bool ok_ = true;
};

}  // namespace cxlpmem::api
