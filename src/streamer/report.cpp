#include "streamer/report.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <string>

namespace cxlpmem::streamer {

void write_csv(std::ostream& os, const std::vector<Series>& series) {
  os << "group,label,kernel,threads,model_gbs,wall_gbs,validation_error\n";
  for (const Series& s : series) {
    for (const SeriesPoint& p : s.points) {
      os << to_string(s.group) << ',' << '"' << s.label << '"' << ','
         << to_string(s.kernel) << ',' << p.threads << ',' << std::fixed
         << std::setprecision(3) << p.model_gbs << ',' << p.wall_gbs << ',';
      if (p.validation_error >= 0)
        os << std::scientific << std::setprecision(2) << p.validation_error;
      os << '\n';
    }
  }
}

namespace {
/// Plot marks by memory kind, following the paper's legend: DDR4 on-node
/// (triangle -> '^'), DDR5 on-node (circle -> 'o'), CXL DDR4 (cross -> 'x').
char mark_for(simkit::MemoryKind k) {
  switch (k) {
    case simkit::MemoryKind::DramDdr4: return '^';
    case simkit::MemoryKind::DramDdr5: return 'o';
    case simkit::MemoryKind::CxlExpander: return 'x';
    case simkit::MemoryKind::Dcpmm: return '*';
  }
  return '+';
}
}  // namespace

void print_panel(std::ostream& os, const std::vector<Series>& all,
                 TestGroup group, stream::Kernel kernel, int width,
                 int height) {
  std::vector<const Series*> picked;
  for (const Series& s : all)
    if (s.group == group && s.kernel == kernel && !s.points.empty())
      picked.push_back(&s);
  if (picked.empty()) {
    os << "(no data for group " << to_string(group) << ")\n";
    return;
  }

  double max_gbs = 0.0;
  int max_threads = 1;
  for (const Series* s : picked)
    for (const SeriesPoint& p : s->points) {
      max_gbs = std::max(max_gbs, p.model_gbs);
      max_threads = std::max(max_threads, p.threads);
    }
  max_gbs = std::max(max_gbs * 1.05, 1.0);

  os << "-- " << title_of(group) << " -- " << to_string(kernel) << " --\n";
  std::vector<std::string> canvas(height, std::string(width, ' '));
  const auto put = [&](int threads, double gbs, char c) {
    const int x = static_cast<int>(std::lround(
        (threads - 1) * double(width - 1) / std::max(1, max_threads - 1)));
    const int y = static_cast<int>(std::lround(
        (1.0 - gbs / max_gbs) * (height - 1)));
    canvas[std::clamp(y, 0, height - 1)][std::clamp(x, 0, width - 1)] = c;
  };
  for (const Series* s : picked)
    for (const SeriesPoint& p : s->points)
      put(p.threads, p.model_gbs, mark_for(s->symbol));

  for (int row = 0; row < height; ++row) {
    const double gbs = max_gbs * (1.0 - double(row) / (height - 1));
    os << std::setw(6) << std::fixed << std::setprecision(1) << gbs
       << " |" << canvas[row] << "\n";
  }
  os << "       +" << std::string(width, '-') << "\n        1";
  os << std::setw(width - 1) << max_threads << " threads\n";
  for (const Series* s : picked) {
    os << "    " << mark_for(s->symbol) << "  " << s->label;
    // Note the saturated (last-point) value like the paper's text does.
    os << "  [" << std::fixed << std::setprecision(1)
       << s->points.back().model_gbs << " GB/s @ "
       << s->points.back().threads << "t]";
    if (s->points.back().validation_error >= 0)
      os << "  (validated, err "
         << std::scientific << std::setprecision(1)
         << s->points.back().validation_error << ")";
    os << "\n";
  }
}

void print_figure(std::ostream& os, const std::vector<Series>& series,
                  stream::Kernel kernel) {
  for (const TestGroup g : kAllGroups) {
    print_panel(os, series, g, kernel);
    os << "\n";
  }
}

}  // namespace cxlpmem::streamer
