// streamer/runner.hpp — executes the configuration matrix and collects
// series (the data behind Figures 5-8).
//
// Model bandwidth is evaluated at every thread count; the real-execution
// validation pass (actual kernels on actual arrays, pmemkit pools for
// App-Direct) runs once per trend at its maximum thread count, keeping full
// sweeps fast while still exercising every code path.
#pragma once

#include <vector>

#include "streamer/config.hpp"

namespace cxlpmem::streamer {

struct SeriesPoint {
  int threads = 0;
  double model_gbs = 0.0;
  double wall_gbs = 0.0;          ///< non-zero only on validated points
  double validation_error = -1.0;  ///< <0 when not validated at this point
};

struct Series {
  TestGroup group;
  std::string label;
  stream::Kernel kernel;
  simkit::MemoryKind symbol;
  std::vector<SeriesPoint> points;
};

struct RunnerOptions {
  stream::BenchOptions bench;
  /// Validate (real run) at each trend's max thread count.
  bool validate = true;
  /// Thread counts swept: 1..max when 0, else this fixed step.
  int thread_step = 1;
};

class Streamer {
 public:
  explicit Streamer(RunnerOptions options = RunnerOptions());

  /// All series (one per trend x kernel) of one group.
  [[nodiscard]] std::vector<Series> run_group(TestGroup group) const;
  /// The whole matrix.
  [[nodiscard]] std::vector<Series> run_all() const;

  [[nodiscard]] const std::vector<GroupSpec>& matrix() const noexcept {
    return matrix_;
  }
  [[nodiscard]] const simkit::profiles::SetupOne& setup_one() const noexcept {
    return setup1_;
  }
  [[nodiscard]] const simkit::profiles::SetupTwo& setup_two() const noexcept {
    return setup2_;
  }

 private:
  [[nodiscard]] const simkit::Machine& machine_for(SetupKind k) const {
    return k == SetupKind::SetupOne ? setup1_.machine : setup2_.machine;
  }

  RunnerOptions options_;
  simkit::profiles::SetupOne setup1_;
  simkit::profiles::SetupTwo setup2_;
  std::vector<GroupSpec> matrix_;
};

}  // namespace cxlpmem::streamer
