// poolinfo — `pmempool info` equivalent for pmemkit pools: identity, lane
// state, heap occupancy, per-type census, structural consistency.
//
//   $ poolinfo <pool-file> <layout>
#include <cstdio>
#include <iostream>

#include "pmemkit/introspect.hpp"

int main(int argc, char** argv) {
  if (argc != 3) {
    std::fprintf(stderr, "usage: %s <pool-file> <layout>\n", argv[0]);
    return 2;
  }
  try {
    auto pool = cxlpmem::pmemkit::ObjectPool::open(argv[1], argv[2]);
    const auto report = cxlpmem::pmemkit::inspect(*pool);
    std::cout << cxlpmem::pmemkit::to_text(report);
    if (pool->recovered())
      std::cout << "note          : recovery ran during this open\n";
    return report.consistent ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
