// streamer CLI — the paper's open-sourced benchmarking tool, rebuilt:
// sweeps the §3.2 configuration matrix over the modelled setups and prints
// figure panels / CSV.
//
// Usage:
//   streamer [--group=1a|1b|1c|2a|2b|all] [--kernel=copy|scale|add|triad|all]
//            [--csv=FILE] [--step=N] [--no-validate] [--quick]
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "streamer/report.hpp"
#include "streamer/runner.hpp"

namespace {

using namespace cxlpmem;
using namespace cxlpmem::streamer;

std::optional<TestGroup> parse_group(const std::string& s) {
  for (const TestGroup g : kAllGroups)
    if (s == to_string(g)) return g;
  return std::nullopt;
}

std::optional<stream::Kernel> parse_kernel(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(c));
  if (s == "copy") return stream::Kernel::Copy;
  if (s == "scale") return stream::Kernel::Scale;
  if (s == "add") return stream::Kernel::Add;
  if (s == "triad") return stream::Kernel::Triad;
  return std::nullopt;
}

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--group=1a|1b|1c|2a|2b|all] [--kernel=copy|scale|add|triad"
               "|all]\n"
               "       [--csv=FILE] [--step=N] [--no-validate] [--quick]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string group_arg = "all";
  std::string kernel_arg = "all";
  std::string csv_path;
  RunnerOptions options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--group=", 0) == 0) {
      group_arg = arg.substr(8);
    } else if (arg.rfind("--kernel=", 0) == 0) {
      kernel_arg = arg.substr(9);
    } else if (arg.rfind("--csv=", 0) == 0) {
      csv_path = arg.substr(6);
    } else if (arg.rfind("--step=", 0) == 0) {
      options.thread_step = std::stoi(arg.substr(7));
    } else if (arg == "--no-validate") {
      options.validate = false;
    } else if (arg == "--quick") {
      options.bench.verify_elements = 1u << 18;
      options.bench.ntimes = 1;
      options.thread_step = std::max(options.thread_step, 2);
    } else {
      return usage(argv[0]);
    }
  }

  if (group_arg != "all" && !parse_group(group_arg)) return usage(argv[0]);
  if (kernel_arg != "all" && !parse_kernel(kernel_arg)) return usage(argv[0]);

  const Streamer streamer(options);
  std::vector<Series> series;
  if (group_arg == "all") {
    series = streamer.run_all();
  } else {
    series = streamer.run_group(*parse_group(group_arg));
  }

  if (!csv_path.empty()) {
    std::ofstream csv(csv_path);
    if (!csv) {
      std::cerr << "cannot write " << csv_path << "\n";
      return 1;
    }
    write_csv(csv, series);
    std::cout << "wrote " << csv_path << "\n";
  }

  if (kernel_arg == "all") {
    for (const stream::Kernel k :
         {stream::Kernel::Scale, stream::Kernel::Add, stream::Kernel::Copy,
          stream::Kernel::Triad}) {
      std::cout << "==== " << to_string(k) << " ====\n";
      print_figure(std::cout, series, k);
    }
  } else {
    print_figure(std::cout, series, *parse_kernel(kernel_arg));
  }
  return 0;
}
