// streamer/report.hpp — output formats: CSV for post-processing, ASCII
// charts for the terminal (the figure panels of the paper, one chart per
// (group, kernel)).
#pragma once

#include <ostream>
#include <vector>

#include "streamer/runner.hpp"

namespace cxlpmem::streamer {

/// CSV columns: group,label,kernel,threads,model_gbs,wall_gbs,validation.
void write_csv(std::ostream& os, const std::vector<Series>& series);

/// Renders one figure panel: every series of `group` x `kernel` as an ASCII
/// chart (threads on x, GB/s on y) with a legend.
void print_panel(std::ostream& os, const std::vector<Series>& series,
                 TestGroup group, stream::Kernel kernel, int width = 72,
                 int height = 18);

/// All five panels of one kernel (a full paper figure).
void print_figure(std::ostream& os, const std::vector<Series>& series,
                  stream::Kernel kernel);

}  // namespace cxlpmem::streamer
