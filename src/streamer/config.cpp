#include "streamer/config.hpp"

namespace cxlpmem::streamer {

std::string to_string(TestGroup g) {
  switch (g) {
    case TestGroup::Class1a: return "1a";
    case TestGroup::Class1b: return "1b";
    case TestGroup::Class1c: return "1c";
    case TestGroup::Class2a: return "2a";
    case TestGroup::Class2b: return "2b";
  }
  return "?";
}

std::string title_of(TestGroup g) {
  switch (g) {
    case TestGroup::Class1a:
      return "Class 1.a: Local memory access as PMem (App-Direct)";
    case TestGroup::Class1b:
      return "Class 1.b: Remote memory access as PMem (App-Direct)";
    case TestGroup::Class1c:
      return "Class 1.c: Remote memory as PMem (thread affinity)";
    case TestGroup::Class2a:
      return "Class 2.a: Remote CC-NUMA (Memory Mode)";
    case TestGroup::Class2b:
      return "Class 2.b: Remote CC-NUMA, all cores (Memory Mode)";
  }
  return "?";
}

std::vector<GroupSpec> default_matrix(
    const simkit::profiles::SetupOne& s1,
    const simkit::profiles::SetupTwo& s2) {
  using simkit::MemoryKind;
  using numakit::AffinityPolicy;
  using stream::AccessMode;

  std::vector<GroupSpec> matrix;

  // ---- Class 1.a ------------------------------------------------------------
  {
    GroupSpec g{TestGroup::Class1a, title_of(TestGroup::Class1a), {}};
    g.trends.push_back(Trend{.label = "cores:s0 pmem#0 (ddr5 local)",
                             .setup = SetupKind::SetupOne,
                             .memory = s1.ddr5_socket0,
                             .symbol = MemoryKind::DramDdr5,
                             .mode = AccessMode::AppDirect,
                             .affinity = AffinityPolicy::Close,
                             .first_socket = s1.socket0,
                             .max_threads = 10});
    g.trends.push_back(Trend{.label = "cores:s1 pmem#1 (ddr5 local)",
                             .setup = SetupKind::SetupOne,
                             .memory = s1.ddr5_socket1,
                             .symbol = MemoryKind::DramDdr5,
                             .mode = AccessMode::AppDirect,
                             .affinity = AffinityPolicy::Close,
                             .first_socket = s1.socket1,
                             .max_threads = 10});
    matrix.push_back(std::move(g));
  }

  // ---- Class 1.b ------------------------------------------------------------
  {
    GroupSpec g{TestGroup::Class1b, title_of(TestGroup::Class1b), {}};
    g.trends.push_back(Trend{.label = "cores:s0 pmem#1 (ddr5 remote)",
                             .setup = SetupKind::SetupOne,
                             .memory = s1.ddr5_socket1,
                             .symbol = MemoryKind::DramDdr5,
                             .mode = AccessMode::AppDirect,
                             .affinity = AffinityPolicy::Close,
                             .first_socket = s1.socket0,
                             .max_threads = 10});
    g.trends.push_back(Trend{.label = "cores:s0 pmem#2 (cxl ddr4)",
                             .setup = SetupKind::SetupOne,
                             .memory = s1.cxl,
                             .symbol = MemoryKind::CxlExpander,
                             .mode = AccessMode::AppDirect,
                             .affinity = AffinityPolicy::Close,
                             .first_socket = s1.socket0,
                             .max_threads = 10});
    g.trends.push_back(Trend{.label = "cores:s1 pmem#2 (cxl ddr4, via upi)",
                             .setup = SetupKind::SetupOne,
                             .memory = s1.cxl,
                             .symbol = MemoryKind::CxlExpander,
                             .mode = AccessMode::AppDirect,
                             .affinity = AffinityPolicy::Close,
                             .first_socket = s1.socket1,
                             .max_threads = 10});
    matrix.push_back(std::move(g));
  }

  // ---- Class 1.c ------------------------------------------------------------
  {
    GroupSpec g{TestGroup::Class1c, title_of(TestGroup::Class1c), {}};
    for (const auto affinity :
         {AffinityPolicy::Close, AffinityPolicy::Spread}) {
      g.trends.push_back(
          Trend{.label = "cores:all pmem#0 (ddr5, " +
                         numakit::to_string(affinity) + ")",
                .setup = SetupKind::SetupOne,
                .memory = s1.ddr5_socket0,
                .symbol = MemoryKind::DramDdr5,
                .mode = AccessMode::AppDirect,
                .affinity = affinity,
                .first_socket = s1.socket0,
                .max_threads = 20});
      g.trends.push_back(
          Trend{.label = "cores:all pmem#2 (cxl ddr4, " +
                         numakit::to_string(affinity) + ")",
                .setup = SetupKind::SetupOne,
                .memory = s1.cxl,
                .symbol = MemoryKind::CxlExpander,
                .mode = AccessMode::AppDirect,
                .affinity = affinity,
                .first_socket = s1.socket0,
                .max_threads = 20});
    }
    matrix.push_back(std::move(g));
  }

  // ---- Class 2.a ------------------------------------------------------------
  {
    GroupSpec g{TestGroup::Class2a, title_of(TestGroup::Class2a), {}};
    g.trends.push_back(Trend{.label = "cores:s0 numa#2 (cxl ddr4)",
                             .setup = SetupKind::SetupOne,
                             .memory = s1.cxl,
                             .symbol = MemoryKind::CxlExpander,
                             .mode = AccessMode::MemoryMode,
                             .affinity = AffinityPolicy::Close,
                             .first_socket = s1.socket0,
                             .max_threads = 10});
    g.trends.push_back(Trend{.label = "cores:s1 numa#2 (cxl ddr4, via upi)",
                             .setup = SetupKind::SetupOne,
                             .memory = s1.cxl,
                             .symbol = MemoryKind::CxlExpander,
                             .mode = AccessMode::MemoryMode,
                             .affinity = AffinityPolicy::Close,
                             .first_socket = s1.socket1,
                             .max_threads = 10});
    g.trends.push_back(Trend{.label = "cores:s0 numa#1 (ddr5 remote)",
                             .setup = SetupKind::SetupOne,
                             .memory = s1.ddr5_socket1,
                             .symbol = MemoryKind::DramDdr5,
                             .mode = AccessMode::MemoryMode,
                             .affinity = AffinityPolicy::Close,
                             .first_socket = s1.socket0,
                             .max_threads = 10});
    g.trends.push_back(Trend{.label = "setup2 cores:s0 numa#1 (ddr4 remote)",
                             .setup = SetupKind::SetupTwo,
                             .memory = s2.ddr4_socket1,
                             .symbol = MemoryKind::DramDdr4,
                             .mode = AccessMode::MemoryMode,
                             .affinity = AffinityPolicy::Close,
                             .first_socket = s2.socket0,
                             .max_threads = 10});
    matrix.push_back(std::move(g));
  }

  // ---- Class 2.b ------------------------------------------------------------
  {
    GroupSpec g{TestGroup::Class2b, title_of(TestGroup::Class2b), {}};
    g.trends.push_back(Trend{.label = "cores:all numa#2 (cxl ddr4)",
                             .setup = SetupKind::SetupOne,
                             .memory = s1.cxl,
                             .symbol = MemoryKind::CxlExpander,
                             .mode = AccessMode::MemoryMode,
                             .affinity = AffinityPolicy::Close,
                             .first_socket = s1.socket0,
                             .max_threads = 20});
    g.trends.push_back(Trend{.label = "cores:all numa#1 (ddr5)",
                             .setup = SetupKind::SetupOne,
                             .memory = s1.ddr5_socket1,
                             .symbol = MemoryKind::DramDdr5,
                             .mode = AccessMode::MemoryMode,
                             .affinity = AffinityPolicy::Close,
                             .first_socket = s1.socket0,
                             .max_threads = 20});
    g.trends.push_back(Trend{.label = "setup2 cores:all numa#0 (ddr4)",
                             .setup = SetupKind::SetupTwo,
                             .memory = s2.ddr4_socket0,
                             .symbol = MemoryKind::DramDdr4,
                             .mode = AccessMode::MemoryMode,
                             .affinity = AffinityPolicy::Close,
                             .first_socket = s2.socket0,
                             .max_threads = 20});
    g.trends.push_back(Trend{.label = "setup2 cores:all numa#1 (ddr4)",
                             .setup = SetupKind::SetupTwo,
                             .memory = s2.ddr4_socket1,
                             .symbol = MemoryKind::DramDdr4,
                             .mode = AccessMode::MemoryMode,
                             .affinity = AffinityPolicy::Close,
                             .first_socket = s2.socket0,
                             .max_threads = 20});
    matrix.push_back(std::move(g));
  }

  return matrix;
}

}  // namespace cxlpmem::streamer
