#include "streamer/runner.hpp"

#include <stdexcept>

#include "numakit/numakit.hpp"

namespace cxlpmem::streamer {

Streamer::Streamer(RunnerOptions options)
    : options_(std::move(options)),
      setup1_(simkit::profiles::make_setup_one()),
      setup2_(simkit::profiles::make_setup_two()),
      matrix_(default_matrix(setup1_, setup2_)) {}

std::vector<Series> Streamer::run_group(TestGroup group) const {
  const GroupSpec* spec = nullptr;
  for (const GroupSpec& g : matrix_)
    if (g.id == group) spec = &g;
  if (spec == nullptr) throw std::logic_error("unknown test group");

  std::vector<Series> out;
  for (const Trend& trend : spec->trends) {
    const simkit::Machine& machine = machine_for(trend.setup);
    const auto topo = numakit::NumaTopology::from_machine(
        machine, machine.memory(trend.memory).home_socket ==
                         simkit::kInvalidId
                     ? std::vector<simkit::MemoryId>{trend.memory}
                     : std::vector<simkit::MemoryId>{});
    const numakit::Placement placement = numakit::resolve_placement(
        topo, numakit::MemBindPolicy::bind(topo.node_of_memory(trend.memory)));

    // One series per kernel, filled point by point.
    std::array<Series, 4> series;
    for (const stream::Kernel k : stream::kAllKernels) {
      auto& s = series[static_cast<std::size_t>(k)];
      s.group = group;
      s.label = trend.label;
      s.kernel = k;
      s.symbol = trend.symbol;
    }

    // Thread counts: 1, 1+step, ... plus always the trend maximum.
    const int step = options_.thread_step < 1 ? 1 : options_.thread_step;
    std::vector<int> counts;
    for (int t = 1; t < trend.max_threads; t += step) counts.push_back(t);
    counts.push_back(trend.max_threads);
    for (const int threads : counts) {
      const bool last = threads == trend.max_threads;
      const auto plan = numakit::plan_affinity(machine, threads,
                                               trend.affinity,
                                               trend.first_socket);
      stream::BenchOptions bench = options_.bench;
      bench.model_only = !(options_.validate && last);
      const stream::StreamBenchmark benchmark(machine, bench);
      const stream::StreamResult r =
          benchmark.run(plan, placement, trend.mode);

      for (const stream::Kernel k : stream::kAllKernels) {
        SeriesPoint p;
        p.threads = threads;
        p.model_gbs = r[k].model_gbs;
        p.wall_gbs = r[k].wall_gbs;
        p.validation_error = bench.model_only ? -1.0 : r.validation_error;
        series[static_cast<std::size_t>(k)].points.push_back(p);
      }
    }
    for (auto& s : series) out.push_back(std::move(s));
  }
  return out;
}

std::vector<Series> Streamer::run_all() const {
  std::vector<Series> out;
  for (const GroupSpec& g : matrix_) {
    auto group = run_group(g.id);
    out.insert(out.end(), std::make_move_iterator(group.begin()),
               std::make_move_iterator(group.end()));
  }
  return out;
}

}  // namespace cxlpmem::streamer
