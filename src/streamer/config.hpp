// streamer/config.hpp — the paper's test-configuration matrix (§3.2,
// Figure 9) as data.
//
// Five groups in two classes:
//   Class 1 (App-Direct, STREAM-PMem over PMDK):
//     1a  local memory as PMem           (cores s0 -> pmem0, s1 -> pmem1)
//     1b  remote memory as PMem          (s0 -> pmem1, s0 -> pmem2,
//                                         s1 -> pmem2)
//     1c  remote memory, thread affinity (close/spread onto pmem0, pmem2)
//   Class 2 (Memory Mode, plain STREAM over CC-NUMA):
//     2a  remote CC-NUMA, one socket     (s0 -> node1, s0 -> node2,
//                                         s1 -> node2, setup2 s0 -> node1)
//     2b  remote CC-NUMA, all cores      (all -> node2, all -> node1,
//                                         setup2 all -> node0/node1)
//
// Trend annotations follow the paper: pmem#/numa# + memory symbol
// (DDR4 on-node, DDR5 on-node, CXL-attached DDR4).
#pragma once

#include <string>
#include <vector>

#include "numakit/affinity.hpp"
#include "simkit/profiles.hpp"
#include "stream/stream_bench.hpp"

namespace cxlpmem::streamer {

enum class TestGroup { Class1a, Class1b, Class1c, Class2a, Class2b };

inline constexpr TestGroup kAllGroups[] = {
    TestGroup::Class1a, TestGroup::Class1b, TestGroup::Class1c,
    TestGroup::Class2a, TestGroup::Class2b};

[[nodiscard]] std::string to_string(TestGroup g);
[[nodiscard]] std::string title_of(TestGroup g);

/// Which modelled machine a trend runs on.
enum class SetupKind { SetupOne, SetupTwo };

/// One plotted trend: a fixed (setup, placement, access-mode, affinity)
/// swept over thread counts.
struct Trend {
  std::string label;  ///< e.g. "s0->pmem2 (cxl ddr4)"
  SetupKind setup = SetupKind::SetupOne;
  simkit::MemoryId memory = 0;  ///< target memory in that setup's machine
  simkit::MemoryKind symbol = simkit::MemoryKind::DramDdr5;
  stream::AccessMode mode = stream::AccessMode::AppDirect;
  numakit::AffinityPolicy affinity = numakit::AffinityPolicy::Close;
  simkit::SocketId first_socket = 0;
  int max_threads = 10;
};

struct GroupSpec {
  TestGroup id;
  std::string title;
  std::vector<Trend> trends;
};

/// Builds the full matrix against the canonical Setup #1 / #2 ids.
[[nodiscard]] std::vector<GroupSpec> default_matrix(
    const simkit::profiles::SetupOne& s1,
    const simkit::profiles::SetupTwo& s2);

}  // namespace cxlpmem::streamer
